//! Linear systems and expected hitting times.
//!
//! Lemma 2 of the paper reasons about random walks *hitting* broadcast
//! territories. The exact finite-chain counterpart is the expected hitting
//! time `h_i = E[steps from i until the walk first enters the target set]`,
//! which solves the linear system
//!
//! `h_i = 0` for targets, `h_i = 1 + Σ_j p_ij·h_j` otherwise.
//!
//! Two solution paths are provided, dispatched automatically by
//! [`expected_hitting_times`]:
//!
//! * a **direct** dense Gaussian-elimination solver ([`solve`], partial
//!   pivoting over a single flat buffer) for small non-target blocks —
//!   exact, `O(k³)`; and
//! * **Gauss–Seidel sweeps** ([`expected_hitting_times_iterative`]) over
//!   the chain's [`crate::Transition`], `O(nnz)` per sweep on either
//!   backend — the path that scales to the large sparse chains. The
//!   iteration matrix is substochastic on every row that can reach a
//!   target, so the sweeps converge monotonically from below.

use crate::chain::MarkovChain;
use crate::error::MarkovError;
use crate::matrix::Matrix;

/// Non-target block size up to which [`expected_hitting_times`] uses the
/// direct dense solver; larger sparse systems go through Gauss–Seidel.
pub const DIRECT_SOLVE_LIMIT: usize = 2048;

/// Default tolerance for the Gauss–Seidel path of
/// [`expected_hitting_times`].
pub const GS_TOL: f64 = 1e-12;

/// Default sweep budget for the Gauss–Seidel path of
/// [`expected_hitting_times`].
pub const GS_MAX_SWEEPS: usize = 1_000_000;

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
///
/// The augmented system lives in one flat `n × (n + 1)` buffer (no
/// per-row allocations); rows are swapped by index indirection.
///
/// # Errors
///
/// * [`MarkovError::NotSquare`] / [`MarkovError::DimensionMismatch`] on
///   malformed input.
/// * [`MarkovError::NotConverged`] when a pivot is numerically zero or
///   non-finite (the system is singular, or NaN/∞ crept into the input);
///   `residual` carries the failing pivot magnitude. No input panics.
///
/// # Examples
///
/// ```
/// use ale_markov::{hitting, Matrix};
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let x = hitting::solve(&a, &[5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MarkovError> {
    if !a.is_square() {
        return Err(MarkovError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    // Augmented working copy: one flat buffer, width n + 1.
    let w = n + 1;
    let mut m = vec![0.0f64; n * w];
    for i in 0..n {
        m[i * w..i * w + n].copy_from_slice(a.row(i));
        m[i * w + n] = b[i];
    }
    // Row permutation: swap indices, not buffer rows.
    let mut perm: Vec<usize> = (0..n).collect();
    // Scratch copy of the pivot row's active segment, so elimination can
    // borrow the destination row mutably without aliasing the source.
    let mut pivot_seg = vec![0.0f64; w];

    for col in 0..n {
        // Partial pivot. NaN pivots lose every comparison, so a NaN-ridden
        // column falls through to the singularity check below instead of
        // panicking.
        let mut pivot_row = col;
        let mut pivot_mag = m[perm[col] * w + col].abs();
        for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
            let mag = m[pr * w + col].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        // The NaN check covers poisoned input — singular and NaN-ridden
        // systems surface as an error, never a panic or a NaN result.
        if pivot_mag.is_nan() || pivot_mag < 1e-12 {
            return Err(MarkovError::NotConverged {
                iterations: col,
                residual: pivot_mag,
            });
        }
        perm.swap(col, pivot_row);
        let prow = perm[col];
        let pivot = m[prow * w + col];
        pivot_seg[col..w].copy_from_slice(&m[prow * w + col..prow * w + w]);
        for &rrow in &perm[col + 1..] {
            let factor = m[rrow * w + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            let dst = &mut m[rrow * w + col..rrow * w + w];
            for (d, s) in dst.iter_mut().zip(&pivot_seg[col..w]) {
                *d -= factor * s;
            }
        }
    }

    // Back substitution through the permutation.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let pr = perm[row];
        let mut acc = m[pr * w + n];
        for k in (row + 1)..n {
            acc -= m[pr * w + k] * x[k];
        }
        x[row] = acc / m[pr * w + row];
    }
    Ok(x)
}

/// Expected hitting times into `targets` for every start state.
///
/// Returns `h` with `h[i] = 0` for targets and the expected step count
/// otherwise. Dispatches on problem size: non-target blocks up to
/// [`DIRECT_SOLVE_LIMIT`] states use the exact direct solver (built from
/// the chain's stored entries, so dense- and sparse-backed chains agree
/// bit for bit); larger blocks use Gauss–Seidel sweeps at [`GS_TOL`].
///
/// # Errors
///
/// * [`MarkovError::Empty`] when `targets` is empty or out of range.
/// * Solver errors when the non-target block is singular (the chain cannot
///   reach the targets from somewhere — e.g. a reducible chain), or when
///   the iterative path does not converge.
///
/// # Examples
///
/// ```
/// use ale_markov::{hitting, MarkovChain};
/// // Lazy walk on a path of 3 nodes; hit node 2 from node 0.
/// let adj = vec![vec![1], vec![0, 2], vec![1]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// let h = hitting::expected_hitting_times(&chain, &[2])?;
/// assert_eq!(h[2], 0.0);
/// assert!(h[0] > h[1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expected_hitting_times(
    chain: &MarkovChain,
    targets: &[usize],
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.len();
    if targets.is_empty() || targets.iter().any(|&t| t >= n) {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let others: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
    if others.is_empty() {
        return Ok(vec![0.0; n]);
    }
    if others.len() > DIRECT_SOLVE_LIMIT {
        return expected_hitting_times_iterative(chain, targets, GS_TOL, GS_MAX_SWEEPS);
    }
    // (I - Q)·h = 1 over the non-target block.
    let p = chain.transition();
    let k = others.len();
    let mut index_of = vec![usize::MAX; n];
    for (ri, &i) in others.iter().enumerate() {
        index_of[i] = ri;
    }
    let mut a = Matrix::zeros(k, k);
    for (ri, &i) in others.iter().enumerate() {
        a[(ri, ri)] = 1.0;
        for (j, q) in p.row_entries(i) {
            let ci = index_of[j];
            if ci != usize::MAX {
                a[(ri, ci)] -= q;
            }
        }
    }
    let h_others = solve(&a, &vec![1.0; k])?;
    let mut h = vec![0.0; n];
    for (ri, &i) in others.iter().enumerate() {
        h[i] = h_others[ri];
    }
    Ok(h)
}

/// Expected hitting times by Gauss–Seidel sweeps: repeatedly applies
/// `h_i ← 1 + Σ_j p_ij·h_j` over non-target states (targets pinned at 0)
/// until the largest per-state update falls below `tol`.
///
/// Each sweep costs `O(nnz)` via [`crate::Transition::row_entries`] — on a
/// sparse chain over an `m`-edge graph that is `O(m)`, which is what makes
/// hitting-time computation feasible at the tens-of-thousands-of-nodes
/// scale. Starting from `h = 0`, iterates increase monotonically towards
/// the true solution.
///
/// # Errors
///
/// * [`MarkovError::Empty`] for empty/out-of-range targets.
/// * [`MarkovError::NotConverged`] when `max_sweeps` sweeps do not reach
///   `tol` (slowly mixing chains; raise the budget) — also the outcome for
///   chains that cannot reach the targets at all, where the true hitting
///   times are infinite.
pub fn expected_hitting_times_iterative(
    chain: &MarkovChain,
    targets: &[usize],
    tol: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.len();
    if targets.is_empty() || targets.iter().any(|&t| t >= n) {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let p = chain.transition();
    let mut h = vec![0.0f64; n];
    let mut delta = f64::INFINITY;
    for _ in 0..max_sweeps {
        delta = 0.0;
        for i in 0..n {
            if is_target[i] {
                continue;
            }
            let mut acc = 1.0;
            for (j, q) in p.row_entries(i) {
                acc += q * h[j];
            }
            let d = (acc - h[i]).abs();
            if d > delta {
                delta = d;
            }
            h[i] = acc;
        }
        if delta < tol {
            return Ok(h);
        }
    }
    Err(MarkovError::NotConverged {
        iterations: max_sweeps,
        residual: delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![3.0, 2.0, -1.0],
            vec![2.0, -2.0, 4.0],
            vec![-1.0, 0.5, -1.0],
        ])
        .unwrap();
        let x = solve(&a, &[1.0, -2.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_square_and_matching_rhs() {
        assert!(solve(&Matrix::zeros(2, 3), &[1.0, 2.0]).is_err());
        assert!(solve(&Matrix::identity(2), &[1.0]).is_err());
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(MarkovError::NotConverged { .. })
        ));
    }

    #[test]
    fn nan_input_errors_instead_of_panicking() {
        let a = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(MarkovError::NotConverged { .. })
        ));
        let all_nan =
            Matrix::from_rows(&[vec![f64::NAN, f64::NAN], vec![f64::NAN, f64::NAN]]).unwrap();
        assert!(solve(&all_nan, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gambler_ruin_hitting_times() {
        // Simple (non-lazy) symmetric walk on a path 0..=4 hitting {4}:
        // classic h[i] = (4-i)(4+i) for reflecting 0? Use the lazy walk and
        // check monotonicity + exactness via the recurrence instead.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let h = expected_hitting_times(&chain, &[4]).unwrap();
        assert_eq!(h[4], 0.0);
        for i in 0..4 {
            assert!(h[i] > h[i + 1], "hitting times decrease towards target");
            // Verify the defining recurrence h_i = 1 + Σ p_ij h_j.
            let p = chain.transition();
            let rhs: f64 = 1.0 + (0..5).map(|j| p.get(i, j) * h[j]).sum::<f64>();
            assert!((h[i] - rhs).abs() < 1e-9, "recurrence at {i}");
        }
    }

    #[test]
    fn iterative_matches_direct_on_both_backends() {
        let adj: Vec<Vec<usize>> = (0..10).map(|i| vec![(i + 9) % 10, (i + 1) % 10]).collect();
        let dense = MarkovChain::lazy_random_walk(&adj).unwrap();
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        let direct = expected_hitting_times(&dense, &[0]).unwrap();
        for chain in [&dense, &sparse] {
            let gs = expected_hitting_times_iterative(chain, &[0], 1e-13, 1_000_000).unwrap();
            for (a, b) in direct.iter().zip(&gs) {
                assert!((a - b).abs() < 1e-9, "direct {a} vs GS {b}");
            }
        }
        // The dispatching entry point agrees on the sparse backend too.
        let via_dispatch = expected_hitting_times(&sparse, &[0]).unwrap();
        for (a, b) in direct.iter().zip(&via_dispatch) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn iterative_reports_non_convergence_for_unreachable_targets() {
        let p = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap();
        let chain = MarkovChain::from_matrix(p).unwrap();
        // State 0 never reaches {1}: hitting time infinite; GS cannot settle.
        assert!(matches!(
            expected_hitting_times_iterative(&chain, &[1], 1e-10, 5_000),
            Err(MarkovError::NotConverged { .. })
        ));
    }

    #[test]
    fn bigger_target_sets_hit_faster() {
        let adj: Vec<Vec<usize>> = (0..8).map(|i| vec![(i + 7) % 8, (i + 1) % 8]).collect();
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let small = expected_hitting_times(&chain, &[0]).unwrap();
        let big = expected_hitting_times(&chain, &[0, 1, 2, 3]).unwrap();
        for i in 4..8 {
            assert!(
                big[i] <= small[i] + 1e-9,
                "larger territories must be hit no later (Lemma 2's engine)"
            );
        }
    }

    #[test]
    fn all_targets_trivial() {
        let adj = vec![vec![1], vec![0]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let h = expected_hitting_times(&chain, &[0, 1]).unwrap();
        assert_eq!(h, vec![0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_targets() {
        let adj = vec![vec![1], vec![0]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        assert!(expected_hitting_times(&chain, &[]).is_err());
        assert!(expected_hitting_times(&chain, &[5]).is_err());
        assert!(expected_hitting_times_iterative(&chain, &[], 1e-9, 10).is_err());
        assert!(expected_hitting_times_iterative(&chain, &[5], 1e-9, 10).is_err());
    }

    #[test]
    fn empty_system() {
        let x = solve(&Matrix::zeros(0, 0), &[]).unwrap_or_default();
        assert!(x.is_empty());
    }
}
