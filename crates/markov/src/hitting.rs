//! Linear systems and expected hitting times.
//!
//! Lemma 2 of the paper reasons about random walks *hitting* broadcast
//! territories. The exact finite-chain counterpart is the expected hitting
//! time `h_i = E[steps from i until the walk first enters the target set]`,
//! which solves the linear system
//!
//! `h_i = 0` for targets, `h_i = 1 + Σ_j p_ij·h_j` otherwise.
//!
//! This module provides a dense Gaussian-elimination solver (partial
//! pivoting) and the hitting-time computation on top of it — exact oracles
//! used by tests and the lemma-level experiments.

use crate::chain::MarkovChain;
use crate::error::MarkovError;
use crate::matrix::Matrix;

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// * [`MarkovError::NotSquare`] / [`MarkovError::DimensionMismatch`] on
///   malformed input.
/// * [`MarkovError::NotConverged`] when a pivot is numerically zero (the
///   system is singular); `residual` carries the failing pivot magnitude.
///
/// # Examples
///
/// ```
/// use ale_markov::{hitting, Matrix};
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let x = hitting::solve(&a, &[5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MarkovError> {
    if !a.is_square() {
        return Err(MarkovError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row = a.row(i).to_vec();
            row.push(b[i]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("no NaN in solver input")
            })
            .expect("non-empty range");
        let pivot = m[pivot_row][col];
        if pivot.abs() < 1e-12 {
            return Err(MarkovError::NotConverged {
                iterations: col,
                residual: pivot.abs(),
            });
        }
        m.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = m.split_at_mut(row);
            let pivot = &head[col];
            for (rk, pk) in tail[0][col..=n].iter_mut().zip(&pivot[col..=n]) {
                *rk -= factor * pk;
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in (row + 1)..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
    }
    Ok(x)
}

/// Expected hitting times into `targets` for every start state.
///
/// Returns `h` with `h[i] = 0` for targets and the expected step count
/// otherwise.
///
/// # Errors
///
/// * [`MarkovError::Empty`] when `targets` is empty or out of range.
/// * Solver errors when the non-target block is singular (the chain cannot
///   reach the targets from somewhere — e.g. a reducible chain).
///
/// # Examples
///
/// ```
/// use ale_markov::{hitting, MarkovChain};
/// // Lazy walk on a path of 3 nodes; hit node 2 from node 0.
/// let adj = vec![vec![1], vec![0, 2], vec![1]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// let h = hitting::expected_hitting_times(&chain, &[2])?;
/// assert_eq!(h[2], 0.0);
/// assert!(h[0] > h[1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expected_hitting_times(
    chain: &MarkovChain,
    targets: &[usize],
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.len();
    if targets.is_empty() || targets.iter().any(|&t| t >= n) {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let others: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
    if others.is_empty() {
        return Ok(vec![0.0; n]);
    }
    // (I - Q)·h = 1 over the non-target block.
    let p = chain.matrix();
    let k = others.len();
    let mut a = Matrix::zeros(k, k);
    for (ri, &i) in others.iter().enumerate() {
        for (ci, &j) in others.iter().enumerate() {
            let q = p[(i, j)];
            a[(ri, ci)] = if ri == ci { 1.0 - q } else { -q };
        }
    }
    let h_others = solve(&a, &vec![1.0; k])?;
    let mut h = vec![0.0; n];
    for (ri, &i) in others.iter().enumerate() {
        h[i] = h_others[ri];
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::MarkovChain;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![3.0, 2.0, -1.0],
            vec![2.0, -2.0, 4.0],
            vec![-1.0, 0.5, -1.0],
        ])
        .unwrap();
        let x = solve(&a, &[1.0, -2.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_square_and_matching_rhs() {
        assert!(solve(&Matrix::zeros(2, 3), &[1.0, 2.0]).is_err());
        assert!(solve(&Matrix::identity(2), &[1.0]).is_err());
    }

    #[test]
    fn singular_system_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(MarkovError::NotConverged { .. })
        ));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gambler_ruin_hitting_times() {
        // Simple (non-lazy) symmetric walk on a path 0..=4 hitting {4}:
        // classic h[i] = (4-i)(4+i) for reflecting 0? Use the lazy walk and
        // check monotonicity + exactness via the recurrence instead.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let h = expected_hitting_times(&chain, &[4]).unwrap();
        assert_eq!(h[4], 0.0);
        for i in 0..4 {
            assert!(h[i] > h[i + 1], "hitting times decrease towards target");
            // Verify the defining recurrence h_i = 1 + Σ p_ij h_j.
            let p = chain.matrix();
            let rhs: f64 = 1.0 + (0..5).map(|j| p[(i, j)] * h[j]).sum::<f64>();
            assert!((h[i] - rhs).abs() < 1e-9, "recurrence at {i}");
        }
    }

    #[test]
    fn bigger_target_sets_hit_faster() {
        let adj: Vec<Vec<usize>> = (0..8).map(|i| vec![(i + 7) % 8, (i + 1) % 8]).collect();
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let small = expected_hitting_times(&chain, &[0]).unwrap();
        let big = expected_hitting_times(&chain, &[0, 1, 2, 3]).unwrap();
        for i in 4..8 {
            assert!(
                big[i] <= small[i] + 1e-9,
                "larger territories must be hit no later (Lemma 2's engine)"
            );
        }
    }

    #[test]
    fn all_targets_trivial() {
        let adj = vec![vec![1], vec![0]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        let h = expected_hitting_times(&chain, &[0, 1]).unwrap();
        assert_eq!(h, vec![0.0, 0.0]);
    }

    #[test]
    fn rejects_bad_targets() {
        let adj = vec![vec![1], vec![0]];
        let chain = MarkovChain::lazy_random_walk(&adj).unwrap();
        assert!(expected_hitting_times(&chain, &[]).is_err());
        assert!(expected_hitting_times(&chain, &[5]).is_err());
    }

    #[test]
    fn empty_system() {
        let x = solve(&Matrix::zeros(0, 0), &[]).unwrap_or_default();
        assert!(x.is_empty());
    }
}
