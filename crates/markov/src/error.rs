//! Error types for the `ale-markov` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix and Markov-chain operations.
///
/// Every fallible public function in this crate returns
/// [`Result<T, MarkovError>`](MarkovError). The variants carry enough context
/// to diagnose the failing invariant without re-running the computation.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A matrix that must be square is not (`rows != cols`).
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A matrix expected to be (row-)stochastic has a row that does not sum
    /// to one within tolerance, or contains a negative entry.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The sum of that row.
        sum: f64,
    },
    /// An iterative method failed to reach the requested tolerance within
    /// its iteration budget.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// The operation requires a non-empty matrix or vector.
    Empty,
    /// The chain is not irreducible (its support graph is disconnected), so
    /// the requested quantity (stationary distribution, mixing time) is not
    /// well defined.
    Reducible,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            MarkovError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MarkovError::NotStochastic { row, sum } => {
                write!(f, "row {row} is not stochastic: sums to {sum}")
            }
            MarkovError::NotConverged {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "iteration did not converge after {iterations} steps (residual {residual:e})"
                )
            }
            MarkovError::Empty => write!(f, "operation requires a non-empty operand"),
            MarkovError::Reducible => {
                write!(f, "chain is reducible; quantity is not well defined")
            }
        }
    }
}

impl Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants: Vec<MarkovError> = vec![
            MarkovError::NotSquare { rows: 2, cols: 3 },
            MarkovError::DimensionMismatch {
                expected: 4,
                found: 5,
            },
            MarkovError::NotStochastic { row: 1, sum: 0.9 },
            MarkovError::NotConverged {
                iterations: 100,
                residual: 1e-3,
            },
            MarkovError::Empty,
            MarkovError::Reducible,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            let first = s.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }
}
