//! Dense row-major and CSR sparse `f64` matrices.
//!
//! This module provides the linear algebra the rest of the workspace needs
//! in two representations:
//!
//! * [`Matrix`] — dense row-major storage. Multiplication, powering,
//!   stochasticity checks, and norm computations. The right tool whenever
//!   full matrix products are needed (exact mixing times, Jacobi
//!   eigendecompositions) and for small state spaces, where its simplicity
//!   and cache behavior win.
//! * [`CsrMatrix`] — compressed sparse row storage (`row_ptr`/`col_idx`/
//!   `values`). Matrix–vector products cost `O(nnz)` instead of `O(n²)`,
//!   which is what lets the diffusion and random-walk scenarios sweep
//!   networks with tens of thousands of nodes: a transition matrix built
//!   from a bounded-degree graph has `nnz = Θ(n)`, so a step is linear in
//!   the network size.
//!
//! [`crate::transition::Transition`] wraps either representation behind one
//! interface; iterative code (chain steps, power iteration, hitting-time
//! sweeps) is written against it and picks up the `O(m)`-per-step sparse
//! path automatically when the chain was built from a graph adjacency.

use crate::error::MarkovError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Tolerance used by stochasticity and symmetry checks.
pub const EPS: f64 = 1e-9;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use ale_markov::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m[(0, 0)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// assert_eq!(m.rows(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.cols(), 3);
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let i = Matrix::identity(4);
    /// assert_eq!(i[(2, 2)], 1.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if `rows` is empty, or
    /// [`MarkovError::DimensionMismatch`] if the rows have unequal lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MarkovError> {
        if rows.is_empty() {
            return Err(MarkovError::Empty);
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(MarkovError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MarkovError::DimensionMismatch {
                    expected: cols,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]])?;
    /// let b = a.multiply(&a)?;
    /// assert_eq!(b[(0, 1)], 2.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn multiply(&self, rhs: &Matrix) -> Result<Matrix, MarkovError> {
        if self.cols != rhs.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: streams through `rhs` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if v.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *out_i = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Row-vector-matrix product `v * self` (distribution evolution).
    ///
    /// This is the natural operation for Markov chains: if `v` is a
    /// probability distribution over states and `self` a transition matrix,
    /// the result is the distribution after one step.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`.
    pub fn vec_mul(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let mut out = vec![0.0; self.cols];
        self.vec_mul_into(v, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::vec_mul`] into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`
    /// or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), MarkovError> {
        if v.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                found: v.len(),
            });
        }
        if out.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: out.len(),
            });
        }
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        Ok(())
    }

    /// Matrix power `self^e` by repeated squaring.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotSquare`] if the matrix is not square.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]])?;
    /// let p = a.power(5)?;
    /// assert_eq!(p[(0, 1)], 5.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn power(&self, e: u32) -> Result<Matrix, MarkovError> {
        if !self.is_square() {
            return Err(MarkovError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                result = result.multiply(&base)?;
            }
            e >>= 1;
            if e > 0 {
                base = base.multiply(&base)?;
            }
        }
        Ok(result)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Checks whether every row sums to 1 (within [`EPS`]) with all entries
    /// non-negative.
    pub fn is_row_stochastic(&self) -> bool {
        self.stochastic_violation().is_none()
    }

    /// Returns the first row violating row-stochasticity, if any.
    ///
    /// Exposes the intermediate result so callers building error messages do
    /// not need to re-scan the matrix.
    pub fn stochastic_violation(&self) -> Option<(usize, f64)> {
        for i in 0..self.rows {
            let row = self.row(i);
            if row.iter().any(|&x| x < -EPS) {
                return Some((i, f64::NAN));
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > EPS * self.cols as f64 {
                return Some((i, s));
            }
        }
        None
    }

    /// Checks whether the matrix is doubly stochastic (rows and columns all
    /// sum to 1, entries non-negative).
    pub fn is_doubly_stochastic(&self) -> bool {
        if !self.is_square() || !self.is_row_stochastic() {
            return false;
        }
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)]).sum();
            if (s - 1.0).abs() > EPS * self.rows as f64 {
                return false;
            }
        }
        true
    }

    /// Checks symmetry within [`EPS`].
    pub fn is_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, MarkovError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows * self.cols,
                found: other.rows * other.cols,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row = self.row(i);
            let formatted: Vec<String> = row.iter().map(|x| format!("{x:.4}")).collect();
            writeln!(f, "[{}]", formatted.join(", "))?;
        }
        Ok(())
    }
}

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// Row `i`'s stored entries live at `values[row_ptr[i]..row_ptr[i + 1]]`
/// with their column indices in `col_idx` at the same positions, sorted by
/// column. Only non-zero entries are stored, so matrix–vector products cost
/// `O(nnz)` — for transition matrices built from bounded-degree graphs that
/// is `O(n)` per step instead of the dense `O(n²)`.
///
/// # Examples
///
/// ```
/// use ale_markov::{CsrMatrix, Matrix};
///
/// // Lazy walk on a 2-path, built sparsely.
/// let m = CsrMatrix::from_row_entries(
///     2,
///     vec![vec![(0, 0.5), (1, 0.5)], vec![(0, 0.5), (1, 0.5)]],
/// )?;
/// assert_eq!(m.nnz(), 4);
/// assert_eq!(m.get(0, 1), 0.5);
/// assert_eq!(m.mul_vec(&[1.0, 0.0])?, vec![0.5, 0.5]);
/// assert_eq!(m.to_dense(), Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]])?);
/// # Ok::<(), ale_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` entry lists.
    ///
    /// Entries may arrive unsorted; duplicates within a row are summed
    /// (mirroring the `+=` accumulation of the dense constructors) and
    /// exact zeros are dropped from the stored pattern.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Empty`] when `rows` is empty or `cols == 0`.
    /// * [`MarkovError::DimensionMismatch`] when an entry's column index is
    ///   `>= cols` (the `found` field carries the offending column).
    pub fn from_row_entries(
        cols: usize,
        rows: Vec<Vec<(usize, f64)>>,
    ) -> Result<Self, MarkovError> {
        if rows.is_empty() || cols == 0 {
            return Err(MarkovError::Empty);
        }
        let nrows = rows.len();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for mut entries in rows {
            entries.sort_by_key(|&(j, _)| j);
            let mut last: Option<usize> = None;
            for (j, v) in entries {
                if j >= cols {
                    return Err(MarkovError::DimensionMismatch {
                        expected: cols,
                        found: j,
                    });
                }
                if last == Some(j) {
                    *values.last_mut().expect("entry pushed for last column") += v;
                } else if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                    last = Some(j);
                }
            }
            // Summed duplicates can cancel to zero; keep them — callers
            // that care about the pattern get what they accumulated.
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: nrows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense form. Costs `O(rows·cols)` memory — intended
    /// for small matrices and test oracles, not the large-n sweep path.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let out = m.row_mut(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out[j] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as parallel `(columns, values)` slices, sorted by
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Reads entry `(i, j)`, returning `0.0` for positions outside the
    /// stored pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `self * v` in `O(nnz)`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(v, &mut out)?;
        Ok(out)
    }

    /// [`CsrMatrix::mul_vec`] into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.cols()`
    /// or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), MarkovError> {
        if v.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        if out.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                found: out.len(),
            });
        }
        for (i, out_i) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            *out_i = cols.iter().zip(vals).map(|(&j, &a)| a * v[j]).sum();
        }
        Ok(())
    }

    /// Row-vector-matrix product `v * self` (distribution evolution) in
    /// `O(nnz)`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`.
    pub fn vec_mul(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let mut out = vec![0.0; self.cols];
        self.vec_mul_into(v, &mut out)?;
        Ok(out)
    }

    /// [`CsrMatrix::vec_mul`] into a caller-provided buffer (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`
    /// or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, v: &[f64], out: &mut [f64]) -> Result<(), MarkovError> {
        if v.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                found: v.len(),
            });
        }
        if out.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: out.len(),
            });
        }
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&j, &a) in cols.iter().zip(vals) {
                out[j] += vi * a;
            }
        }
        Ok(())
    }

    /// Returns the transpose in `O(nnz)`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &j in &self.col_idx {
            counts[j] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.cols + 1);
        row_ptr.push(0usize);
        for c in &counts {
            row_ptr.push(row_ptr.last().expect("non-empty") + c);
        }
        let mut cursor = row_ptr[..self.cols].to_vec();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let slot = cursor[j];
                // Rows are visited in order, so transposed rows stay sorted.
                col_idx[slot] = i;
                values[slot] = v;
                cursor[j] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Checks whether every row sums to 1 (within [`EPS`]) with all entries
    /// non-negative.
    pub fn is_row_stochastic(&self) -> bool {
        self.stochastic_violation().is_none()
    }

    /// Returns the first row violating row-stochasticity, if any (same
    /// contract as [`Matrix::stochastic_violation`]).
    pub fn stochastic_violation(&self) -> Option<(usize, f64)> {
        for i in 0..self.rows {
            let (_, vals) = self.row(i);
            if vals.iter().any(|&x| x < -EPS) {
                return Some((i, f64::NAN));
            }
            let s: f64 = vals.iter().sum();
            if (s - 1.0).abs() > EPS * self.cols as f64 {
                return Some((i, s));
            }
        }
        None
    }

    /// Checks whether the matrix is doubly stochastic (rows and columns all
    /// sum to 1, entries non-negative) in `O(nnz)`.
    pub fn is_doubly_stochastic(&self) -> bool {
        if !self.is_square() || !self.is_row_stochastic() {
            return false;
        }
        let mut col_sums = vec![0.0; self.cols];
        for (&j, &v) in self.col_idx.iter().zip(&self.values) {
            col_sums[j] += v;
        }
        col_sums
            .iter()
            .all(|s| (s - 1.0).abs() <= EPS * self.rows as f64)
    }

    /// Checks symmetry within [`EPS`] by comparing against the transpose.
    pub fn is_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        for i in 0..self.rows {
            let (cols_a, vals_a) = self.row(i);
            let (cols_b, vals_b) = t.row(i);
            // Patterns may differ (an entry paired with a structural zero);
            // walk both sorted rows in lockstep.
            let (mut a, mut b) = (0usize, 0usize);
            while a < cols_a.len() || b < cols_b.len() {
                match (cols_a.get(a), cols_b.get(b)) {
                    (Some(&ja), Some(&jb)) if ja == jb => {
                        if (vals_a[a] - vals_b[b]).abs() > EPS {
                            return false;
                        }
                        a += 1;
                        b += 1;
                    }
                    (Some(&ja), jb) if jb.is_none_or(|&jb| ja < jb) => {
                        if vals_a[a].abs() > EPS {
                            return false;
                        }
                        a += 1;
                    }
                    _ => {
                        if vals_b[b].abs() > EPS {
                            return false;
                        }
                        b += 1;
                    }
                }
            }
        }
        true
    }
}

/// Vector helpers shared across the crate.
pub mod vecops {
    /// L1 norm (sum of absolute values).
    pub fn norm_l1(v: &[f64]) -> f64 {
        v.iter().map(|x| x.abs()).sum()
    }

    /// L2 (Euclidean) norm.
    pub fn norm_l2(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum (infinity) norm.
    pub fn norm_inf(v: &[f64]) -> f64 {
        v.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Dot product. Panics if lengths differ.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != b.len()`.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot product length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Largest absolute component-wise difference.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != b.len()`.
    pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Scales `v` in place so it sums to 1. No-op on the zero vector.
    pub fn normalize_l1(v: &mut [f64]) {
        let s = norm_l1(v);
        if s > 0.0 {
            for x in v.iter_mut() {
                *x /= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::DimensionMismatch { .. }));
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            MarkovError::Empty
        ));
    }

    #[test]
    fn multiply_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.multiply(&i).unwrap(), a);
        assert_eq!(i.multiply(&a).unwrap(), a);
    }

    #[test]
    fn multiply_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.multiply(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn multiply_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.multiply(&b).is_err());
    }

    #[test]
    fn power_of_nilpotent_and_shift() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let p = a.power(10).unwrap();
        assert_eq!(p[(0, 1)], 10.0);
        let p0 = a.power(0).unwrap();
        assert_eq!(p0, Matrix::identity(2));
    }

    #[test]
    fn power_requires_square() {
        assert!(Matrix::zeros(2, 3).power(2).is_err());
    }

    #[test]
    fn vec_mul_evolves_distribution() {
        // Two-state chain that swaps states deterministically.
        let p = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let d = p.vec_mul(&[1.0, 0.0]).unwrap();
        assert_eq!(d, vec![0.0, 1.0]);
        let d2 = p.vec_mul(&d).unwrap();
        assert_eq!(d2, vec![1.0, 0.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn stochastic_checks() {
        let p = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        assert!(p.is_row_stochastic());
        assert!(!p.is_doubly_stochastic());
        let d = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(d.is_doubly_stochastic());
        let neg = Matrix::from_rows(&[vec![-0.5, 1.5], vec![0.5, 0.5]]).unwrap();
        assert!(!neg.is_row_stochastic());
        assert!(neg.stochastic_violation().is_some());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(s.is_symmetric());
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        assert!(!a.is_symmetric());
        assert!(!Matrix::zeros(2, 3).is_symmetric());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
        assert!(a.max_abs_diff(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn display_contains_entries() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.0000"));
    }

    fn sample_csr() -> CsrMatrix {
        // [[0.5, 0.5, 0.0], [0.25, 0.5, 0.25], [0.0, 0.5, 0.5]]
        CsrMatrix::from_row_entries(
            3,
            vec![
                vec![(1, 0.5), (0, 0.5)], // unsorted on purpose
                vec![(0, 0.25), (1, 0.5), (2, 0.25)],
                vec![(1, 0.5), (2, 0.5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_roundtrips_through_dense() {
        let s = sample_csr();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.nnz(), 7);
        assert!(s.is_square());
        let d = s.to_dense();
        assert_eq!(CsrMatrix::from_dense(&d), s);
        assert_eq!(d[(1, 2)], 0.25);
        assert_eq!(s.get(1, 2), 0.25);
        assert_eq!(s.get(0, 2), 0.0);
    }

    #[test]
    fn csr_builder_sums_duplicates_and_drops_zeros() {
        let s = CsrMatrix::from_row_entries(
            2,
            vec![
                vec![(0, 0.25), (0, 0.25), (1, 0.0), (1, 0.5)],
                vec![(1, 1.0)],
            ],
        )
        .unwrap();
        assert_eq!(s.get(0, 0), 0.5);
        assert_eq!(s.get(0, 1), 0.5);
        // The explicit zero was dropped, the duplicate merged.
        assert_eq!(s.nnz(), 3);
        assert!(s.is_row_stochastic());
    }

    #[test]
    fn csr_rejects_bad_shapes() {
        assert!(matches!(
            CsrMatrix::from_row_entries(0, vec![vec![]]),
            Err(MarkovError::Empty)
        ));
        assert!(matches!(
            CsrMatrix::from_row_entries(2, Vec::new()),
            Err(MarkovError::Empty)
        ));
        assert!(matches!(
            CsrMatrix::from_row_entries(2, vec![vec![(5, 1.0)]]),
            Err(MarkovError::DimensionMismatch { found: 5, .. })
        ));
    }

    #[test]
    fn csr_products_match_dense() {
        let s = sample_csr();
        let d = s.to_dense();
        let v = [0.2, 0.3, 0.5];
        assert_eq!(s.mul_vec(&v).unwrap(), d.mul_vec(&v).unwrap());
        assert_eq!(s.vec_mul(&v).unwrap(), d.vec_mul(&v).unwrap());
        assert!(s.mul_vec(&[1.0]).is_err());
        assert!(s.vec_mul(&[1.0]).is_err());
        let mut out = vec![0.0; 2];
        assert!(s.mul_vec_into(&v, &mut out).is_err());
        assert!(s.vec_mul_into(&v, &mut out).is_err());
    }

    #[test]
    fn csr_transpose_matches_dense_transpose() {
        let s =
            CsrMatrix::from_row_entries(3, vec![vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]).unwrap();
        assert_eq!(s.transpose().to_dense(), s.to_dense().transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn csr_stochastic_and_symmetry_checks() {
        let s = sample_csr();
        assert!(s.is_row_stochastic());
        // Columns sum to (0.75, 1.5, 0.75) and s[0][1] != s[1][0].
        assert!(!s.is_doubly_stochastic());
        assert!(!s.is_symmetric());
        // Lazy-walk-style symmetric matrix: genuinely doubly stochastic.
        let sym = CsrMatrix::from_row_entries(
            3,
            vec![
                vec![(0, 0.5), (1, 0.5)],
                vec![(0, 0.5), (1, 0.25), (2, 0.25)],
                vec![(1, 0.25), (2, 0.75)],
            ],
        )
        .unwrap();
        assert!(sym.is_doubly_stochastic());
        assert!(sym.is_symmetric());
        let asym =
            CsrMatrix::from_row_entries(2, vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)]]).unwrap();
        assert!(asym.is_row_stochastic());
        assert!(!asym.is_doubly_stochastic());
        assert!(!asym.is_symmetric());
        let neg = CsrMatrix::from_row_entries(2, vec![vec![(0, -0.5), (1, 1.5)], vec![(0, 1.0)]])
            .unwrap();
        assert!(neg.stochastic_violation().is_some());
        let rect = CsrMatrix::from_row_entries(3, vec![vec![(0, 1.0)]]).unwrap();
        assert!(!rect.is_symmetric());
        assert!(!rect.is_doubly_stochastic());
    }

    #[test]
    fn vecops_norms() {
        let v = [3.0, -4.0];
        assert_eq!(norm_l1(&v), 7.0);
        assert_eq!(norm_l2(&v), 5.0);
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(dot(&v, &[1.0, 1.0]), -1.0);
        assert_eq!(max_abs_diff(&v, &[3.0, 0.0]), 4.0);
        let mut u = vec![1.0, 3.0];
        normalize_l1(&mut u);
        assert!((u[0] - 0.25).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
