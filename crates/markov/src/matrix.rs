//! Dense row-major `f64` matrices.
//!
//! This module provides the minimal dense linear algebra the rest of the
//! workspace needs: multiplication, powering, stochasticity checks, and norm
//! computations. Sizes are small (matrices are `n x n` for simulated network
//! sizes up to a few thousand), so a straightforward dense representation is
//! both simpler and faster than sparse structures at this scale.

use crate::error::MarkovError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Tolerance used by stochasticity and symmetry checks.
pub const EPS: f64 = 1e-9;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use ale_markov::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m[(0, 0)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// assert_eq!(m.rows(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.cols(), 3);
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let i = Matrix::identity(4);
    /// assert_eq!(i[(2, 2)], 1.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] if `rows` is empty, or
    /// [`MarkovError::DimensionMismatch`] if the rows have unequal lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MarkovError> {
        if rows.is_empty() {
            return Err(MarkovError::Empty);
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(MarkovError::Empty);
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MarkovError::DimensionMismatch {
                    expected: cols,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]])?;
    /// let b = a.multiply(&a)?;
    /// assert_eq!(b[(0, 1)], 2.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn multiply(&self, rhs: &Matrix) -> Result<Matrix, MarkovError> {
        if self.cols != rhs.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: streams through `rhs` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if v.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *out_i = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Row-vector-matrix product `v * self` (distribution evolution).
    ///
    /// This is the natural operation for Markov chains: if `v` is a
    /// probability distribution over states and `self` a transition matrix,
    /// the result is the distribution after one step.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when `v.len() != self.rows()`.
    pub fn vec_mul(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if v.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows,
                found: v.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        Ok(out)
    }

    /// Matrix power `self^e` by repeated squaring.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotSquare`] if the matrix is not square.
    ///
    /// # Examples
    ///
    /// ```
    /// use ale_markov::Matrix;
    /// let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]])?;
    /// let p = a.power(5)?;
    /// assert_eq!(p[(0, 1)], 5.0);
    /// # Ok::<(), ale_markov::MarkovError>(())
    /// ```
    pub fn power(&self, e: u32) -> Result<Matrix, MarkovError> {
        if !self.is_square() {
            return Err(MarkovError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                result = result.multiply(&base)?;
            }
            e >>= 1;
            if e > 0 {
                base = base.multiply(&base)?;
            }
        }
        Ok(result)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Checks whether every row sums to 1 (within [`EPS`]) with all entries
    /// non-negative.
    pub fn is_row_stochastic(&self) -> bool {
        self.stochastic_violation().is_none()
    }

    /// Returns the first row violating row-stochasticity, if any.
    ///
    /// Exposes the intermediate result so callers building error messages do
    /// not need to re-scan the matrix.
    pub fn stochastic_violation(&self) -> Option<(usize, f64)> {
        for i in 0..self.rows {
            let row = self.row(i);
            if row.iter().any(|&x| x < -EPS) {
                return Some((i, f64::NAN));
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > EPS * self.cols as f64 {
                return Some((i, s));
            }
        }
        None
    }

    /// Checks whether the matrix is doubly stochastic (rows and columns all
    /// sum to 1, entries non-negative).
    pub fn is_doubly_stochastic(&self) -> bool {
        if !self.is_square() || !self.is_row_stochastic() {
            return false;
        }
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)]).sum();
            if (s - 1.0).abs() > EPS * self.rows as f64 {
                return false;
            }
        }
        true
    }

    /// Checks symmetry within [`EPS`].
    pub fn is_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > EPS {
                    return false;
                }
            }
        }
        true
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, MarkovError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: self.rows * self.cols,
                found: other.rows * other.cols,
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row = self.row(i);
            let formatted: Vec<String> = row.iter().map(|x| format!("{x:.4}")).collect();
            writeln!(f, "[{}]", formatted.join(", "))?;
        }
        Ok(())
    }
}

/// Vector helpers shared across the crate.
pub mod vecops {
    /// L1 norm (sum of absolute values).
    pub fn norm_l1(v: &[f64]) -> f64 {
        v.iter().map(|x| x.abs()).sum()
    }

    /// L2 (Euclidean) norm.
    pub fn norm_l2(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum (infinity) norm.
    pub fn norm_inf(v: &[f64]) -> f64 {
        v.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Dot product. Panics if lengths differ.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != b.len()`.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot product length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Largest absolute component-wise difference.
    ///
    /// # Panics
    ///
    /// Panics when `a.len() != b.len()`.
    pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// Scales `v` in place so it sums to 1. No-op on the zero vector.
    pub fn normalize_l1(v: &mut [f64]) {
        let s = norm_l1(v);
        if s > 0.0 {
            for x in v.iter_mut() {
                *x /= s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::vecops::*;
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(!z.is_square());
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, MarkovError::DimensionMismatch { .. }));
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            MarkovError::Empty
        ));
    }

    #[test]
    fn multiply_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.multiply(&i).unwrap(), a);
        assert_eq!(i.multiply(&a).unwrap(), a);
    }

    #[test]
    fn multiply_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.multiply(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn multiply_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.multiply(&b).is_err());
    }

    #[test]
    fn power_of_nilpotent_and_shift() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let p = a.power(10).unwrap();
        assert_eq!(p[(0, 1)], 10.0);
        let p0 = a.power(0).unwrap();
        assert_eq!(p0, Matrix::identity(2));
    }

    #[test]
    fn power_requires_square() {
        assert!(Matrix::zeros(2, 3).power(2).is_err());
    }

    #[test]
    fn vec_mul_evolves_distribution() {
        // Two-state chain that swaps states deterministically.
        let p = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let d = p.vec_mul(&[1.0, 0.0]).unwrap();
        assert_eq!(d, vec![0.0, 1.0]);
        let d2 = p.vec_mul(&d).unwrap();
        assert_eq!(d2, vec![1.0, 0.0]);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn stochastic_checks() {
        let p = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        assert!(p.is_row_stochastic());
        assert!(!p.is_doubly_stochastic());
        let d = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        assert!(d.is_doubly_stochastic());
        let neg = Matrix::from_rows(&[vec![-0.5, 1.5], vec![0.5, 0.5]]).unwrap();
        assert!(!neg.is_row_stochastic());
        assert!(neg.stochastic_violation().is_some());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(s.is_symmetric());
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]).unwrap();
        assert!(!a.is_symmetric());
        assert!(!Matrix::zeros(2, 3).is_symmetric());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.25);
        assert!(a.max_abs_diff(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn display_contains_entries() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("0.0000"));
    }

    #[test]
    fn vecops_norms() {
        let v = [3.0, -4.0];
        assert_eq!(norm_l1(&v), 7.0);
        assert_eq!(norm_l2(&v), 5.0);
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(dot(&v, &[1.0, 1.0]), -1.0);
        assert_eq!(max_abs_diff(&v, &[3.0, 0.0]), 4.0);
        let mut u = vec![1.0, 3.0];
        normalize_l1(&mut u);
        assert!((u[0] - 0.25).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
