//! Monte-Carlo simulation of finite chains.
//!
//! The exact machinery ([`crate::hitting`], [`crate::mixing`]) covers small
//! state spaces; this module samples trajectories directly — the
//! cross-check used by tests (MC ≈ exact) and a complement to the exact
//! methods at scale. Sampling walks the chain's stored row entries
//! ([`crate::Transition::row_entries`]), so one step costs `O(deg)` on a
//! sparse-backed chain instead of `O(n)` — simulating a walk on a
//! 20 000-node bounded-degree graph touches a handful of entries per step.

use crate::chain::MarkovChain;
use crate::error::MarkovError;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Samples one step of the chain from state `i`.
///
/// # Errors
///
/// [`MarkovError::DimensionMismatch`] when `i` is out of range.
pub fn step_state(chain: &MarkovChain, i: usize, rng: &mut StdRng) -> Result<usize, MarkovError> {
    let n = chain.len();
    if i >= n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            found: i,
        });
    }
    let p = chain.transition();
    let mut u: f64 = rng.gen();
    let mut last_support = None;
    for (j, w) in p.row_entries(i) {
        u -= w;
        if u <= 0.0 {
            return Ok(j);
        }
        last_support = Some(j);
    }
    // Rounding slack: the row sums to 1 within EPS; land on the last
    // positive-probability state.
    last_support.ok_or(MarkovError::Empty)
}

/// Walks `steps` steps from `start`, returning the trajectory (including
/// the start state; length `steps + 1`).
///
/// # Errors
///
/// Propagates [`step_state`] failures.
pub fn trajectory(
    chain: &MarkovChain,
    start: usize,
    steps: usize,
    seed: u64,
) -> Result<Vec<usize>, MarkovError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut path = Vec::with_capacity(steps + 1);
    let mut cur = start;
    path.push(cur);
    for _ in 0..steps {
        cur = step_state(chain, cur, &mut rng)?;
        path.push(cur);
    }
    Ok(path)
}

/// Monte-Carlo estimate of the expected hitting time from `start` into
/// `targets`: mean over `trials` trajectories, each capped at `cap` steps
/// (capped trajectories contribute `cap`, biasing the estimate low — pick
/// `cap` well above the expected value).
///
/// # Errors
///
/// [`MarkovError::Empty`] for empty/out-of-range targets; propagates
/// sampling failures.
pub fn estimate_hitting_time(
    chain: &MarkovChain,
    start: usize,
    targets: &[usize],
    trials: usize,
    cap: usize,
    seed: u64,
) -> Result<f64, MarkovError> {
    let n = chain.len();
    if targets.is_empty() || targets.iter().any(|&t| t >= n) {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    if is_target[start] {
        return Ok(0.0);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..trials.max(1) {
        let mut cur = start;
        let mut steps = 0usize;
        while !is_target[cur] && steps < cap {
            cur = step_state(chain, cur, &mut rng)?;
            steps += 1;
        }
        total += steps;
    }
    Ok(total as f64 / trials.max(1) as f64)
}

/// Fraction of `trials` trajectories from `start` that enter `targets`
/// within `budget` steps — the Monte-Carlo form of Lemma 2's hitting
/// event for a single walk.
///
/// # Errors
///
/// Same conditions as [`estimate_hitting_time`].
pub fn hit_probability(
    chain: &MarkovChain,
    start: usize,
    targets: &[usize],
    budget: usize,
    trials: usize,
    seed: u64,
) -> Result<f64, MarkovError> {
    let n = chain.len();
    if targets.is_empty() || targets.iter().any(|&t| t >= n) {
        return Err(MarkovError::Empty);
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t] = true;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    for _ in 0..trials.max(1) {
        let mut cur = start;
        let mut hit = is_target[cur];
        for _ in 0..budget {
            if hit {
                break;
            }
            cur = step_state(chain, cur, &mut rng)?;
            hit = is_target[cur];
        }
        if hit {
            hits += 1;
        }
    }
    Ok(hits as f64 / trials.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting::expected_hitting_times;

    fn cycle_chain(n: usize) -> MarkovChain {
        let adj: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect();
        MarkovChain::lazy_random_walk(&adj).unwrap()
    }

    #[test]
    fn trajectories_have_right_shape_and_support() {
        let chain = cycle_chain(6);
        let path = trajectory(&chain, 2, 50, 7).unwrap();
        assert_eq!(path.len(), 51);
        assert_eq!(path[0], 2);
        // Lazy cycle: consecutive states differ by at most 1 (mod n).
        for w in path.windows(2) {
            let d = w[0].abs_diff(w[1]);
            assert!(d == 0 || d == 1 || d == 5, "illegal transition {w:?}");
        }
    }

    #[test]
    fn sparse_backend_walks_identically() {
        let adj: Vec<Vec<usize>> = (0..9).map(|i| vec![(i + 8) % 9, (i + 1) % 9]).collect();
        let dense = MarkovChain::lazy_random_walk(&adj).unwrap();
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        // Same stored entries in the same order → identical branch
        // decisions, hence bit-identical trajectories per seed.
        assert_eq!(
            trajectory(&dense, 3, 200, 42).unwrap(),
            trajectory(&sparse, 3, 200, 42).unwrap()
        );
        assert_eq!(
            estimate_hitting_time(&dense, 0, &[4], 500, 10_000, 7).unwrap(),
            estimate_hitting_time(&sparse, 0, &[4], 500, 10_000, 7).unwrap()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let chain = cycle_chain(8);
        assert_eq!(
            trajectory(&chain, 0, 30, 5).unwrap(),
            trajectory(&chain, 0, 30, 5).unwrap()
        );
        assert_ne!(
            trajectory(&chain, 0, 30, 5).unwrap(),
            trajectory(&chain, 0, 30, 6).unwrap()
        );
    }

    #[test]
    fn mc_hitting_matches_exact() {
        let chain = cycle_chain(8);
        let exact = expected_hitting_times(&chain, &[4]).unwrap();
        let mc = estimate_hitting_time(&chain, 0, &[4], 4000, 100_000, 11).unwrap();
        let rel = (mc - exact[0]).abs() / exact[0];
        assert!(
            rel < 0.1,
            "MC {mc:.1} vs exact {:.1} (rel err {rel:.3})",
            exact[0]
        );
    }

    #[test]
    fn hit_probability_monotone_in_budget() {
        let chain = cycle_chain(10);
        let p_small = hit_probability(&chain, 0, &[5], 5, 2000, 3).unwrap();
        let p_big = hit_probability(&chain, 0, &[5], 200, 2000, 3).unwrap();
        assert!(p_big >= p_small);
        assert!(p_big > 0.8, "long budget should almost surely hit: {p_big}");
    }

    #[test]
    fn start_inside_targets_is_instant() {
        let chain = cycle_chain(5);
        assert_eq!(
            estimate_hitting_time(&chain, 3, &[3], 10, 10, 0).unwrap(),
            0.0
        );
        assert_eq!(hit_probability(&chain, 3, &[3], 0, 10, 0).unwrap(), 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let chain = cycle_chain(5);
        assert!(estimate_hitting_time(&chain, 0, &[], 10, 10, 0).is_err());
        assert!(hit_probability(&chain, 0, &[9], 10, 10, 0).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(step_state(&chain, 99, &mut rng).is_err());
    }
}
