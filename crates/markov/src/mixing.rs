//! Mixing-time computation.
//!
//! The paper (Section 2) defines the mixing time of an `n`-node graph `G` as
//! the minimum `t` such that for every starting distribution `π₀`,
//! `‖π₀Pᵗ − π*‖_∞ ≤ 1/(2n)`, where `P` is the transition matrix of the
//! (lazy) random walk. Because the maximum over starting distributions is
//! attained at point masses, the condition is equivalent to every **row** of
//! `Pᵗ` being within `1/(2n)` of the stationary distribution in max-norm.
//!
//! Three methods are provided:
//!
//! * [`mixing_time_exact`] — doubling + binary search on matrix powers,
//!   exact per the definition, cost `O(n³ log t_mix)`. Matrix powering is
//!   inherently dense, so sparse-backed chains are densified through the
//!   [`crate::transition::DENSIFY_LIMIT`] guard;
//! * [`mixing_time_from_state`] — iterative: evolves a single point mass
//!   with [`MarkovChain::step_into`] until it is within `1/(2n)` of the
//!   stationary distribution. Runs in `O(t·nnz)` on either backend — the
//!   large-n path; on vertex-transitive chains (torus, ring, hypercube)
//!   the result equals the exact mixing time; and
//! * [`mixing_time_spectral_upper`] — the reversible-chain bound
//!   `|Pᵗ(i,j) − 1/n| ≤ λ₂ᵗ` for symmetric doubly-stochastic `P`, giving
//!   `t_mix ≤ ⌈ln(2n)/(1 − λ₂)⌉`, cheap enough for large graphs.

use crate::chain::MarkovChain;
use crate::error::MarkovError;
use crate::matrix::{vecops, Matrix};

/// Maximum over rows of the max-norm distance between `Pᵗ` rows and the
/// stationary distribution `pi`.
fn max_row_distance(pt: &Matrix, pi: &[f64]) -> f64 {
    let n = pt.rows();
    let mut worst: f64 = 0.0;
    for i in 0..n {
        let row = pt.row(i);
        for (a, b) in row.iter().zip(pi) {
            worst = worst.max((a - b).abs());
        }
    }
    worst
}

/// Computes the exact mixing time per the paper's definition.
///
/// Uses doubling to find a power `2^k` that mixes, then binary-searches the
/// minimal `t` in `(2^{k−1}, 2^k]`. The stationary distribution is taken as
/// uniform when `p` is doubly stochastic and computed by power iteration
/// otherwise.
///
/// # Errors
///
/// * [`MarkovError::Reducible`] if the chain cannot mix at all.
/// * [`MarkovError::NotConverged`] if `cap` is exceeded before mixing; the
///   `iterations` field carries the cap.
/// * [`MarkovError::DimensionMismatch`] when a sparse-backed chain exceeds
///   [`crate::transition::DENSIFY_LIMIT`] states (matrix powering would
///   allocate `O(n²)`); use [`mixing_time_from_state`] or the spectral
///   bound at that scale.
///
/// # Examples
///
/// ```
/// use ale_markov::{MarkovChain, mixing};
/// let adj = vec![vec![1, 2, 3], vec![0, 2, 3], vec![0, 1, 3], vec![0, 1, 2]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// let t = mixing::mixing_time_exact(&chain, 1 << 20)?;
/// assert!(t <= 8, "lazy K4 mixes very fast, got {t}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mixing_time_exact(chain: &MarkovChain, cap: u64) -> Result<u64, MarkovError> {
    let n = chain.len();
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    if n == 1 {
        return Ok(0);
    }
    if !chain.is_irreducible() {
        return Err(MarkovError::Reducible);
    }
    let p = chain.transition().to_dense_checked()?;
    let pi = if p.is_doubly_stochastic() {
        vec![1.0 / n as f64; n]
    } else {
        chain.stationary_distribution(1e-13, 1_000_000)?
    };
    let target = 1.0 / (2.0 * n as f64);

    // Doubling phase: find k with P^(2^k) mixed.
    let mut power_matrices: Vec<Matrix> = vec![p]; // P^(2^0)
    let mut t: u64 = 1;
    if max_row_distance(&power_matrices[0], &pi) <= target {
        return Ok(1);
    }
    loop {
        let last = power_matrices.last().expect("non-empty by construction");
        let next = last.multiply(last)?;
        t *= 2;
        if t > cap {
            return Err(MarkovError::NotConverged {
                iterations: cap as usize,
                residual: max_row_distance(&next, &pi),
            });
        }
        let mixed = max_row_distance(&next, &pi) <= target;
        power_matrices.push(next);
        if mixed {
            break;
        }
    }

    // Binary search in (t/2, t] using the stored binary powers.
    let mut lo = t / 2; // known unmixed
    let mut hi = t; // known mixed
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let pm = power_from_binary(&power_matrices, mid)?;
        if max_row_distance(&pm, &pi) <= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Reconstructs `P^e` from stored binary powers `P^(2^i)`.
fn power_from_binary(powers: &[Matrix], e: u64) -> Result<Matrix, MarkovError> {
    let n = powers[0].rows();
    let mut result = Matrix::identity(n);
    let mut bit = 0usize;
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            result = result.multiply(&powers[bit])?;
        }
        e >>= 1;
        bit += 1;
    }
    Ok(result)
}

/// First round `t` at which the point mass on `start` is mixed:
/// `‖e_start·Pᵗ − π‖_∞ ≤ 1/(2n)`.
///
/// This is the iterative, backend-generic form of the mixing-time
/// computation: it runs in `O(t·nnz)` via [`MarkovChain::step_into`], so a
/// sparse chain on an `m`-edge graph pays `O(m)` per round — the method of
/// choice at the tens-of-thousands-of-nodes scale where matrix powering is
/// out of reach. On vertex-transitive chains (torus, ring, hypercube,
/// complete graph) every start state is equivalent, so the result equals
/// the exact mixing time of [`mixing_time_exact`]; in general it is the
/// exact first mixed round for this start state, a lower bound on the
/// worst-case mixing time.
///
/// The stationary distribution is taken as uniform when the chain is
/// doubly stochastic and computed by power iteration otherwise.
///
/// # Errors
///
/// * [`MarkovError::Empty`] for an empty chain,
///   [`MarkovError::DimensionMismatch`] for `start` out of range.
/// * [`MarkovError::Reducible`] if the chain cannot mix at all.
/// * [`MarkovError::NotConverged`] if `cap` rounds do not reach the
///   threshold; `residual` carries the final distance.
///
/// # Examples
///
/// ```
/// use ale_markov::{MarkovChain, mixing};
/// let adj: Vec<Vec<usize>> = (0..8).map(|i| vec![(i + 7) % 8, (i + 1) % 8]).collect();
/// let dense = MarkovChain::lazy_random_walk(&adj)?;
/// let sparse = MarkovChain::lazy_random_walk_sparse(&adj)?;
/// let t = mixing::mixing_time_from_state(&dense, 0, 1 << 20)?;
/// assert_eq!(t, mixing::mixing_time_from_state(&sparse, 0, 1 << 20)?);
/// // The cycle is vertex-transitive: equals the exact mixing time.
/// assert_eq!(t, mixing::mixing_time_exact(&dense, 1 << 20)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mixing_time_from_state(
    chain: &MarkovChain,
    start: usize,
    cap: u64,
) -> Result<u64, MarkovError> {
    let n = chain.len();
    if n == 0 {
        return Err(MarkovError::Empty);
    }
    if start >= n {
        return Err(MarkovError::DimensionMismatch {
            expected: n,
            found: start,
        });
    }
    if n == 1 {
        return Ok(0);
    }
    if !chain.is_irreducible() {
        return Err(MarkovError::Reducible);
    }
    let pi = if chain.transition().is_doubly_stochastic() {
        vec![1.0 / n as f64; n]
    } else {
        chain.stationary_distribution(1e-13, 1_000_000)?
    };
    let target = 1.0 / (2.0 * n as f64);
    let mut mu = vec![0.0; n];
    mu[start] = 1.0;
    let mut next = vec![0.0; n];
    let mut dist = f64::INFINITY;
    for t in 1..=cap {
        chain.step_into(&mu, &mut next)?;
        std::mem::swap(&mut mu, &mut next);
        dist = vecops::max_abs_diff(&mu, &pi);
        if dist <= target {
            return Ok(t);
        }
    }
    Err(MarkovError::NotConverged {
        iterations: cap as usize,
        residual: dist,
    })
}

/// Deterministic start-state sample for multi-start mixing estimation:
/// `count` distinct states drawn from a SplitMix64 stream seeded with
/// `seed` (all states when `count >= n`). Pure — the same `(n, count,
/// seed)` always yields the same starts, so estimator results stay
/// byte-reproducible across runs and worker counts.
///
/// # Examples
///
/// ```
/// use ale_markov::mixing;
/// let a = mixing::sample_starts(1000, 3, 7);
/// assert_eq!(a, mixing::sample_starts(1000, 3, 7));
/// assert_eq!(a.len(), 3);
/// assert_eq!(mixing::sample_starts(4, 10, 1), vec![0, 1, 2, 3]);
/// ```
pub fn sample_starts(n: usize, count: usize, seed: u64) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    if count >= n {
        return (0..n).collect();
    }
    let mut starts = Vec::with_capacity(count);
    let mut state = seed;
    while starts.len() < count {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let s = (z % n as u64) as usize;
        if !starts.contains(&s) {
            starts.push(s);
        }
    }
    starts
}

/// Multi-start sampling estimator for the mixing time: the **maximum**
/// of [`mixing_time_from_state`] over the given start states.
///
/// Each start's first-mixed round is exact for that start and a lower
/// bound on the worst-case `t_mix`; the max over a sample tightens that
/// bound on families that are *not* vertex-transitive (stars, barbells,
/// random regular graphs), where a single arbitrary start can be far
/// from the slowest one. Cost is `O(t·nnz)` per start on either backend
/// — the cheap estimator of choice at the tens-of-thousands-of-nodes
/// scale where [`mixing_time_exact`]'s matrix powering is out of reach.
/// Pair with [`sample_starts`] for a deterministic sample.
///
/// # Errors
///
/// * [`MarkovError::Empty`] when `starts` is empty.
/// * Propagates every per-start failure of [`mixing_time_from_state`]
///   ([`MarkovError::Reducible`], [`MarkovError::NotConverged`], an
///   out-of-range start).
///
/// # Examples
///
/// ```
/// use ale_markov::{mixing, MarkovChain};
/// // A barbell-ish path is not vertex-transitive: the endpoint mixes
/// // slower than the middle, and the multi-start max sees that.
/// let adj: Vec<Vec<usize>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// let mid = mixing::mixing_time_from_state(&chain, 1, 1 << 20)?;
/// let multi = mixing::mixing_time_multi_start(&chain, &[0, 1, 3], 1 << 20)?;
/// assert!(multi >= mid);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mixing_time_multi_start(
    chain: &MarkovChain,
    starts: &[usize],
    cap: u64,
) -> Result<u64, MarkovError> {
    if starts.is_empty() {
        return Err(MarkovError::Empty);
    }
    let mut worst = 0u64;
    for &start in starts {
        worst = worst.max(mixing_time_from_state(chain, start, cap)?);
    }
    Ok(worst)
}

/// Spectral upper bound on mixing time for symmetric doubly-stochastic
/// chains: `t_mix ≤ ⌈ln(2n)/(1 − λ₂)⌉`.
///
/// Derived from `|Pᵗ(i,j) − 1/n| ≤ λ₂ᵗ` (reversible chain with uniform
/// stationary distribution) and `ln(1/λ) ≥ 1 − λ`.
///
/// # Panics
///
/// Panics if `lambda2` is not in `[0, 1)` or `n == 0` — both indicate caller
/// bugs rather than data-dependent failures.
pub fn mixing_time_spectral_upper(lambda2: f64, n: usize) -> u64 {
    assert!(n > 0, "graph must be non-empty");
    assert!(
        (0.0..1.0).contains(&lambda2),
        "lambda2 must be in [0,1), got {lambda2}"
    );
    if n == 1 {
        return 0;
    }
    let gap = 1.0 - lambda2;
    ((2.0 * n as f64).ln() / gap).ceil() as u64
}

/// Checks the Montenegro–Tetali band `1/Φ ≤ t_mix ≤ c/Φ²` the paper cites
/// (\[24\]); returns the pair of violated-side flags `(below, above)` so tests
/// can assert both directions with an explicit slack constant.
///
/// The lower inequality is asymptotic; `slack_lo`/`slack_hi` absorb the
/// constants (the paper's statement hides them too).
pub fn mixing_band_check(tmix: f64, phi: f64, slack_lo: f64, slack_hi: f64) -> (bool, bool) {
    let below_ok = tmix * slack_lo >= 1.0 / phi;
    let above_ok = tmix <= slack_hi / (phi * phi);
    (below_ok, above_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy(adj: &[Vec<usize>]) -> MarkovChain {
        MarkovChain::lazy_random_walk(adj).unwrap()
    }

    fn cycle_adj(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    fn complete_adj(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect()
    }

    #[test]
    fn singleton_mixes_instantly() {
        let p = Matrix::identity(1);
        let c = MarkovChain::from_matrix(p).unwrap();
        assert_eq!(mixing_time_exact(&c, 100).unwrap(), 0);
    }

    #[test]
    fn complete_graph_mixes_in_constant_time() {
        let c = lazy(&complete_adj(16));
        let t = mixing_time_exact(&c, 1 << 20).unwrap();
        assert!(t <= 16, "lazy K16 should mix fast, got {t}");
    }

    #[test]
    fn cycle_mixing_grows_quadratically() {
        let t8 = mixing_time_exact(&lazy(&cycle_adj(8)), 1 << 24).unwrap();
        let t16 = mixing_time_exact(&lazy(&cycle_adj(16)), 1 << 24).unwrap();
        let t32 = mixing_time_exact(&lazy(&cycle_adj(32)), 1 << 24).unwrap();
        // Ratios approach 4 for a quadratic; allow a generous band at small n.
        let r1 = t16 as f64 / t8 as f64;
        let r2 = t32 as f64 / t16 as f64;
        assert!(r1 > 2.5 && r1 < 6.0, "t16/t8 = {r1}");
        assert!(r2 > 2.5 && r2 < 6.0, "t32/t16 = {r2}");
    }

    #[test]
    fn mixing_monotone_in_definition() {
        // After t_mix rounds the distance stays below the threshold for lazy
        // (positive semidefinite-like) chains; check at t_mix and t_mix + 3.
        let c = lazy(&cycle_adj(10));
        let t = mixing_time_exact(&c, 1 << 22).unwrap();
        let n = 10;
        let pi = vec![1.0 / n as f64; n];
        let p = c.as_dense().expect("dense-built chain");
        let pt = p.power(t as u32).unwrap();
        assert!(max_row_distance(&pt, &pi) <= 1.0 / (2.0 * n as f64) + 1e-12);
        let pt1 = p.power(t as u32 + 3).unwrap();
        assert!(max_row_distance(&pt1, &pi) <= 1.0 / (2.0 * n as f64) + 1e-12);
        if t > 1 {
            let pt_less = p.power(t as u32 - 1).unwrap();
            assert!(
                max_row_distance(&pt_less, &pi) > 1.0 / (2.0 * n as f64),
                "t_mix must be minimal"
            );
        }
    }

    #[test]
    fn cap_is_honored() {
        let c = lazy(&cycle_adj(64));
        assert!(matches!(
            mixing_time_exact(&c, 4),
            Err(MarkovError::NotConverged { .. })
        ));
    }

    #[test]
    fn reducible_chain_rejected() {
        let p = Matrix::identity(3);
        let c = MarkovChain::from_matrix(p).unwrap();
        assert!(matches!(
            mixing_time_exact(&c, 100),
            Err(MarkovError::Reducible)
        ));
    }

    #[test]
    fn spectral_upper_bound_dominates_exact() {
        for n in [4usize, 8, 12] {
            let c = lazy(&cycle_adj(n));
            let exact = mixing_time_exact(&c, 1 << 24).unwrap();
            let l2 = crate::spectral::lambda2_power(c.transition(), 1e-12, 1_000_000).unwrap();
            let upper = mixing_time_spectral_upper(l2, n);
            assert!(
                upper >= exact,
                "spectral bound {upper} below exact {exact} for C{n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lambda2 must be in [0,1)")]
    fn spectral_upper_rejects_bad_lambda() {
        mixing_time_spectral_upper(1.5, 4);
    }

    #[test]
    fn exact_runs_on_small_sparse_chains() {
        let adj = cycle_adj(12);
        let dense = lazy(&adj);
        let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
        assert_eq!(
            mixing_time_exact(&dense, 1 << 24).unwrap(),
            mixing_time_exact(&sparse, 1 << 24).unwrap()
        );
    }

    #[test]
    fn from_state_equals_exact_on_vertex_transitive() {
        for n in [8usize, 12, 16] {
            let c = lazy(&cycle_adj(n));
            let exact = mixing_time_exact(&c, 1 << 24).unwrap();
            let iter = mixing_time_from_state(&c, 0, 1 << 24).unwrap();
            assert_eq!(iter, exact, "C{n}");
        }
    }

    #[test]
    fn from_state_rejects_bad_inputs() {
        let c = lazy(&cycle_adj(8));
        assert!(matches!(
            mixing_time_from_state(&c, 9, 100),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            mixing_time_from_state(&c, 0, 2),
            Err(MarkovError::NotConverged { .. })
        ));
        let reducible = MarkovChain::from_matrix(Matrix::identity(3)).unwrap();
        assert!(matches!(
            mixing_time_from_state(&reducible, 0, 100),
            Err(MarkovError::Reducible)
        ));
        let singleton = MarkovChain::from_matrix(Matrix::identity(1)).unwrap();
        assert_eq!(mixing_time_from_state(&singleton, 0, 1).unwrap(), 0);
    }

    #[test]
    fn multi_start_dominates_each_start_and_stays_deterministic() {
        // A star is not vertex-transitive: leaf starts mix slower than
        // the hub. The multi-start max must dominate every sampled start.
        let n = 9;
        let adj: Vec<Vec<usize>> = std::iter::once((1..n).collect::<Vec<_>>())
            .chain((1..n).map(|_| vec![0usize]))
            .collect();
        let c = lazy(&adj);
        let starts = sample_starts(n, 4, 42);
        assert_eq!(starts, sample_starts(n, 4, 42));
        let multi = mixing_time_multi_start(&c, &starts, 1 << 22).unwrap();
        for &s in &starts {
            assert!(multi >= mixing_time_from_state(&c, s, 1 << 22).unwrap());
        }
        // On a vertex-transitive family it equals the exact mixing time.
        let cyc = lazy(&cycle_adj(12));
        assert_eq!(
            mixing_time_multi_start(&cyc, &sample_starts(12, 3, 1), 1 << 24).unwrap(),
            mixing_time_exact(&cyc, 1 << 24).unwrap()
        );
        // Errors: empty starts, bad start index.
        assert!(matches!(
            mixing_time_multi_start(&cyc, &[], 100),
            Err(MarkovError::Empty)
        ));
        assert!(matches!(
            mixing_time_multi_start(&cyc, &[99], 100),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn band_check_flags() {
        // t = 1/phi exactly: lower side tight, upper holds.
        let (lo, hi) = mixing_band_check(10.0, 0.1, 1.0, 1.0);
        assert!(lo && hi);
        // Implausibly fast mixing violates the lower bound.
        let (lo, _) = mixing_band_check(1.0, 0.01, 1.0, 1.0);
        assert!(!lo);
        // Implausibly slow mixing violates the upper bound.
        let (_, hi) = mixing_band_check(1e6, 0.1, 1.0, 1.0);
        assert!(!hi);
    }
}
