//! Finite Markov chains over graph state spaces.
//!
//! The paper's analysis uses two chains built from the network graph
//! `G = (V, E)`:
//!
//! * the **lazy random walk** `P = ½I + ½D⁻¹A` used by the random-walk
//!   probing phase of the irrevocable protocol (Section 4), and
//! * the **diffusion matrix** `S` with `s_ij = α` for each edge and
//!   `s_ii = 1 − α·deg(i)` used by the `Avg` procedure of the revocable
//!   protocol (Section 5.2), where the paper sets `α = 1/(2k^{1+ε})`.
//!
//! `S` is symmetric and doubly stochastic whenever `α·deg(i) ≤ 1` for all
//! `i`, which makes its stationary distribution uniform — the fact Lemma 3
//! rests on.
//!
//! A chain stores its matrix as a [`Transition`], so the same `MarkovChain`
//! API runs on a dense [`Matrix`] or a sparse [`crate::CsrMatrix`]. The
//! `*_sparse` constructors (and the `Graph`-taking helpers in `ale-graph`)
//! produce the CSR backend, whose `step` costs `O(m)` — the representation
//! the large-n scenario sweeps depend on.

use crate::error::MarkovError;
use crate::matrix::{vecops, CsrMatrix, Matrix, EPS};
use crate::transition::Transition;

/// CSR row entries of the lazy random walk at node `i` with neighbors
/// `nbrs`: the self-loop `½` plus `½/deg` per neighbor.
///
/// Shared by [`MarkovChain::lazy_random_walk_sparse`] and the
/// `Graph`-taking constructors in `ale-graph`, so the two build paths
/// cannot drift.
///
/// # Panics
///
/// Panics when `nbrs` is empty (the walk is undefined at an isolated
/// node); constructors reject that case first.
pub fn lazy_walk_row(i: usize, nbrs: &[usize]) -> Vec<(usize, f64)> {
    assert!(!nbrs.is_empty(), "lazy walk undefined at isolated node {i}");
    let w = 0.5 / nbrs.len() as f64;
    let mut entries = Vec::with_capacity(nbrs.len() + 1);
    entries.push((i, 0.5));
    entries.extend(nbrs.iter().map(|&j| (j, w)));
    entries
}

/// CSR row entries of the diffusion matrix at node `i`: `α` per neighbor
/// and `1 − α·deg(i)` on the diagonal (clamped at 0 within tolerance).
///
/// Shared by [`MarkovChain::diffusion_sparse`] and the `Graph`-taking
/// constructors in `ale-graph`.
///
/// # Errors
///
/// [`MarkovError::NotStochastic`] when `α·deg(i) > 1` beyond [`EPS`].
pub fn diffusion_row(
    i: usize,
    nbrs: &[usize],
    alpha: f64,
) -> Result<Vec<(usize, f64)>, MarkovError> {
    let self_weight = 1.0 - alpha * nbrs.len() as f64;
    if self_weight < -EPS {
        return Err(MarkovError::NotStochastic {
            row: i,
            sum: self_weight,
        });
    }
    let mut entries = Vec::with_capacity(nbrs.len() + 1);
    entries.push((i, self_weight.max(0.0)));
    entries.extend(nbrs.iter().map(|&j| (j, alpha)));
    Ok(entries)
}

/// A finite Markov chain given by a row-stochastic transition matrix.
///
/// # Examples
///
/// ```
/// use ale_markov::MarkovChain;
///
/// // Lazy walk on a triangle: every state keeps probability 1/2 in place.
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// assert_eq!(chain.len(), 3);
/// assert!(chain.transition().is_doubly_stochastic());
///
/// // The same chain on the sparse backend agrees step for step.
/// let sparse = MarkovChain::lazy_random_walk_sparse(&adj)?;
/// assert_eq!(chain.step(&[1.0, 0.0, 0.0])?, sparse.step(&[1.0, 0.0, 0.0])?);
/// # Ok::<(), ale_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: Transition,
}

impl MarkovChain {
    /// Wraps an explicit transition matrix in either representation.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotSquare`] for non-square input and
    /// [`MarkovError::NotStochastic`] when a row does not describe a
    /// probability distribution.
    pub fn from_transition(p: Transition) -> Result<Self, MarkovError> {
        if !p.is_square() {
            return Err(MarkovError::NotSquare {
                rows: p.rows(),
                cols: p.cols(),
            });
        }
        if let Some((row, sum)) = p.stochastic_violation() {
            return Err(MarkovError::NotStochastic { row, sum });
        }
        Ok(MarkovChain { p })
    }

    /// Wraps an explicit dense transition matrix.
    ///
    /// # Errors
    ///
    /// Same contract as [`MarkovChain::from_transition`].
    pub fn from_matrix(p: Matrix) -> Result<Self, MarkovError> {
        Self::from_transition(Transition::Dense(p))
    }

    /// Wraps an explicit CSR transition matrix.
    ///
    /// # Errors
    ///
    /// Same contract as [`MarkovChain::from_transition`].
    pub fn from_csr(p: CsrMatrix) -> Result<Self, MarkovError> {
        Self::from_transition(Transition::Sparse(p))
    }

    /// Builds the lazy random walk `P = ½I + ½D⁻¹A` over an adjacency list
    /// on the dense backend.
    ///
    /// This is exactly the walk used by the paper's random-walk probing: the
    /// token stays put with probability ½ and otherwise moves to a uniformly
    /// random neighbor. For large sparse graphs use
    /// [`MarkovChain::lazy_random_walk_sparse`].
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for an empty graph or if any node has
    /// no neighbors (the walk would be undefined there).
    pub fn lazy_random_walk(adj: &[Vec<usize>]) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut p = Matrix::zeros(n, n);
        for (i, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                return Err(MarkovError::Empty);
            }
            p[(i, i)] = 0.5;
            let w = 0.5 / nbrs.len() as f64;
            for &j in nbrs {
                p[(i, j)] += w;
            }
        }
        MarkovChain::from_matrix(p)
    }

    /// Builds the lazy random walk on the CSR sparse backend: `O(m)` memory
    /// and `O(m)` per [`MarkovChain::step`].
    ///
    /// # Errors
    ///
    /// Same contract as [`MarkovChain::lazy_random_walk`].
    pub fn lazy_random_walk_sparse(adj: &[Vec<usize>]) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut rows = Vec::with_capacity(n);
        for (i, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                return Err(MarkovError::Empty);
            }
            rows.push(lazy_walk_row(i, nbrs));
        }
        MarkovChain::from_csr(CsrMatrix::from_row_entries(n, rows)?)
    }

    /// Builds the diffusion matrix `S` of the `Avg` procedure: `s_ij = α`
    /// for every edge `{i, j}` and `s_ii = 1 − α·deg(i)`, on the dense
    /// backend.
    ///
    /// With `α = 1/(2k^{1+ε})` this is the potential-averaging step in
    /// Algorithm 7 line 8 of the paper. `S` is symmetric (hence doubly
    /// stochastic) whenever `α·deg(i) ≤ 1` for every node. For large sparse
    /// graphs use [`MarkovChain::diffusion_sparse`].
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for an empty graph,
    /// [`MarkovError::NotStochastic`] if `α·deg(i) > 1` for some node
    /// (negative self-loop probability).
    pub fn diffusion(adj: &[Vec<usize>], alpha: f64) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut p = Matrix::zeros(n, n);
        for (i, nbrs) in adj.iter().enumerate() {
            let self_weight = 1.0 - alpha * nbrs.len() as f64;
            if self_weight < -EPS {
                return Err(MarkovError::NotStochastic {
                    row: i,
                    sum: self_weight,
                });
            }
            p[(i, i)] = self_weight.max(0.0);
            for &j in nbrs {
                p[(i, j)] += alpha;
            }
        }
        MarkovChain::from_matrix(p)
    }

    /// Builds the diffusion matrix on the CSR sparse backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`MarkovChain::diffusion`].
    pub fn diffusion_sparse(adj: &[Vec<usize>], alpha: f64) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut rows = Vec::with_capacity(n);
        for (i, nbrs) in adj.iter().enumerate() {
            rows.push(diffusion_row(i, nbrs, alpha)?);
        }
        MarkovChain::from_csr(CsrMatrix::from_row_entries(n, rows)?)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.p.rows()
    }

    /// Returns `true` when the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the transition matrix (either backend).
    pub fn transition(&self) -> &Transition {
        &self.p
    }

    /// Borrows the dense matrix when this chain uses the dense backend.
    pub fn as_dense(&self) -> Option<&Matrix> {
        self.p.as_dense()
    }

    /// Borrows the CSR matrix when this chain uses the sparse backend.
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        self.p.as_sparse()
    }

    /// `true` when the chain runs on the CSR backend.
    pub fn is_sparse(&self) -> bool {
        self.p.is_sparse()
    }

    /// Consumes the chain and returns the transition matrix.
    pub fn into_transition(self) -> Transition {
        self.p
    }

    /// Evolves a distribution one step: returns `µ·P`.
    ///
    /// Costs `O(nnz)` — `O(m)` on the sparse backend, `O(n²)` dense.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `mu.len() != self.len()`.
    pub fn step(&self, mu: &[f64]) -> Result<Vec<f64>, MarkovError> {
        self.p.vec_mul(mu)
    }

    /// [`MarkovChain::step`] into a caller-provided buffer — the
    /// allocation-free form long diffusion loops should use.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] on either length mismatch.
    pub fn step_into(&self, mu: &[f64], out: &mut [f64]) -> Result<(), MarkovError> {
        self.p.vec_mul_into(mu, out)
    }

    /// Checks irreducibility: the support digraph of `P` must be strongly
    /// connected. For the symmetric chains used in this workspace this is
    /// plain graph connectivity. Costs `O(nnz)` on either backend.
    pub fn is_irreducible(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        // Forward reachability from state 0.
        if !Self::all_reachable(&self.p, n) {
            return false;
        }
        // Backward reachability = forward reachability in the transpose.
        match &self.p {
            Transition::Dense(m) => Self::all_reachable(&Transition::Dense(m.transpose()), n),
            Transition::Sparse(m) => Self::all_reachable(&Transition::Sparse(m.transpose()), n),
        }
    }

    /// DFS over `p`'s support from state 0; `true` when every state is hit.
    fn all_reachable(p: &Transition, n: usize) -> bool {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for (v, w) in p.row_entries(u) {
                if w > EPS && !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Checks aperiodicity via the sufficient condition used throughout the
    /// paper: some state has a self-loop (`p_ii > 0`). Lazy walks and
    /// diffusion matrices always satisfy it.
    pub fn has_self_loop(&self) -> bool {
        (0..self.len()).any(|i| self.p.get(i, i) > EPS)
    }

    /// Computes the stationary distribution by power iteration on `µ ↦ µP`.
    ///
    /// For the doubly-stochastic chains in this workspace the result is the
    /// uniform distribution; the general implementation doubles as a test
    /// oracle for that fact.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Reducible`] when the chain is reducible, and
    /// [`MarkovError::NotConverged`] if `max_iters` steps do not reach the
    /// requested tolerance `tol`.
    pub fn stationary_distribution(
        &self,
        tol: f64,
        max_iters: usize,
    ) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        let n = self.len();
        let mut mu = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iters {
            self.step_into(&mu, &mut next)?;
            residual = vecops::max_abs_diff(&mu, &next);
            std::mem::swap(&mut mu, &mut next);
            if residual < tol {
                vecops::normalize_l1(&mut mu);
                return Ok(mu);
            }
        }
        Err(MarkovError::NotConverged {
            iterations: max_iters,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Vec<Vec<usize>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    fn triangle() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![0, 2], vec![0, 1]]
    }

    #[test]
    fn lazy_walk_rows_stochastic_and_lazy() {
        let c = MarkovChain::lazy_random_walk(&path3()).unwrap();
        assert!(c.transition().is_row_stochastic());
        for i in 0..3 {
            assert!((c.transition().get(i, i) - 0.5).abs() < 1e-12);
        }
        // Degree-1 endpoints put the other half on their single neighbor.
        assert!((c.transition().get(0, 1) - 0.5).abs() < 1e-12);
        assert!((c.transition().get(1, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_regular_graph_is_doubly_stochastic() {
        let c = MarkovChain::lazy_random_walk(&triangle()).unwrap();
        assert!(c.transition().is_doubly_stochastic());
        assert!(c.transition().is_symmetric());
    }

    #[test]
    fn lazy_walk_rejects_isolated_node() {
        let adj = vec![vec![1], vec![0], vec![]];
        assert!(MarkovChain::lazy_random_walk(&adj).is_err());
        assert!(MarkovChain::lazy_random_walk(&[]).is_err());
        assert!(MarkovChain::lazy_random_walk_sparse(&adj).is_err());
        assert!(MarkovChain::lazy_random_walk_sparse(&[]).is_err());
    }

    #[test]
    fn sparse_constructors_match_dense() {
        for adj in [path3(), triangle()] {
            let dense = MarkovChain::lazy_random_walk(&adj).unwrap();
            let sparse = MarkovChain::lazy_random_walk_sparse(&adj).unwrap();
            assert!(sparse.is_sparse() && !dense.is_sparse());
            assert_eq!(
                sparse.transition().to_dense(),
                dense.transition().to_dense()
            );
            let dd = MarkovChain::diffusion(&adj, 0.25).unwrap();
            let ds = MarkovChain::diffusion_sparse(&adj, 0.25).unwrap();
            assert_eq!(ds.transition().to_dense(), dd.transition().to_dense());
        }
    }

    #[test]
    fn diffusion_is_symmetric_doubly_stochastic() {
        let c = MarkovChain::diffusion(&path3(), 0.25).unwrap();
        assert!(c.transition().is_symmetric());
        assert!(c.transition().is_doubly_stochastic());
        assert_eq!(c.transition().get(0, 1), 0.25);
        assert_eq!(c.transition().get(1, 1), 0.5);
    }

    #[test]
    fn diffusion_rejects_overweight_alpha() {
        // Middle node has degree 2; alpha = 0.75 would give s_ii = -0.5.
        assert!(matches!(
            MarkovChain::diffusion(&path3(), 0.75),
            Err(MarkovError::NotStochastic { row: 1, .. })
        ));
        assert!(matches!(
            MarkovChain::diffusion_sparse(&path3(), 0.75),
            Err(MarkovError::NotStochastic { row: 1, .. })
        ));
    }

    #[test]
    fn from_matrix_validates() {
        let bad = Matrix::from_rows(&[vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap();
        assert!(matches!(
            MarkovChain::from_matrix(bad.clone()),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        assert!(matches!(
            MarkovChain::from_csr(CsrMatrix::from_dense(&bad)),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            MarkovChain::from_matrix(rect),
            Err(MarkovError::NotSquare { .. })
        ));
    }

    #[test]
    fn irreducibility_detects_disconnection() {
        let p = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap();
        let c = MarkovChain::from_matrix(p.clone()).unwrap();
        assert!(!c.is_irreducible());
        let cs = MarkovChain::from_csr(CsrMatrix::from_dense(&p)).unwrap();
        assert!(!cs.is_irreducible());
        let c2 = MarkovChain::lazy_random_walk(&path3()).unwrap();
        assert!(c2.is_irreducible());
        let c3 = MarkovChain::lazy_random_walk_sparse(&path3()).unwrap();
        assert!(c3.is_irreducible());
    }

    #[test]
    fn irreducibility_needs_both_directions() {
        // 0 → 1 but 1 only returns to itself: reducible despite forward
        // reachability from 0.
        let p = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        let c = MarkovChain::from_matrix(p.clone()).unwrap();
        assert!(!c.is_irreducible());
        let cs = MarkovChain::from_csr(CsrMatrix::from_dense(&p)).unwrap();
        assert!(!cs.is_irreducible());
    }

    #[test]
    fn self_loops_present_on_lazy_chains() {
        assert!(MarkovChain::lazy_random_walk(&triangle())
            .unwrap()
            .has_self_loop());
        assert!(MarkovChain::lazy_random_walk_sparse(&triangle())
            .unwrap()
            .has_self_loop());
    }

    #[test]
    fn stationary_uniform_on_doubly_stochastic() {
        for c in [
            MarkovChain::diffusion(&triangle(), 0.2).unwrap(),
            MarkovChain::diffusion_sparse(&triangle(), 0.2).unwrap(),
        ] {
            let pi = c.stationary_distribution(1e-12, 10_000).unwrap();
            for x in pi {
                assert!((x - 1.0 / 3.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stationary_weighted_on_path() {
        // Lazy walk on a path: stationary ∝ degree = (1, 2, 1)/4.
        let c = MarkovChain::lazy_random_walk(&path3()).unwrap();
        let pi = c.stationary_distribution(1e-13, 100_000).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-6);
        assert!((pi[1] - 0.5).abs() < 1e-6);
        assert!((pi[2] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn stationary_rejects_reducible() {
        let p = Matrix::identity(2);
        let c = MarkovChain::from_matrix(p).unwrap();
        assert!(matches!(
            c.stationary_distribution(1e-9, 100),
            Err(MarkovError::Reducible)
        ));
    }

    #[test]
    fn step_moves_mass() {
        for c in [
            MarkovChain::lazy_random_walk(&path3()).unwrap(),
            MarkovChain::lazy_random_walk_sparse(&path3()).unwrap(),
        ] {
            let mu = c.step(&[1.0, 0.0, 0.0]).unwrap();
            assert!((mu[0] - 0.5).abs() < 1e-12);
            assert!((mu[1] - 0.5).abs() < 1e-12);
            assert_eq!(mu[2], 0.0);
            let mut out = vec![0.0; 3];
            c.step_into(&[1.0, 0.0, 0.0], &mut out).unwrap();
            assert_eq!(out, mu);
        }
    }
}
