//! Finite Markov chains over graph state spaces.
//!
//! The paper's analysis uses two chains built from the network graph
//! `G = (V, E)`:
//!
//! * the **lazy random walk** `P = ½I + ½D⁻¹A` used by the random-walk
//!   probing phase of the irrevocable protocol (Section 4), and
//! * the **diffusion matrix** `S` with `s_ij = α` for each edge and
//!   `s_ii = 1 − α·deg(i)` used by the `Avg` procedure of the revocable
//!   protocol (Section 5.2), where the paper sets `α = 1/(2k^{1+ε})`.
//!
//! `S` is symmetric and doubly stochastic whenever `α·deg(i) ≤ 1` for all
//! `i`, which makes its stationary distribution uniform — the fact Lemma 3
//! rests on.

use crate::error::MarkovError;
use crate::matrix::{vecops, Matrix, EPS};

/// A finite Markov chain given by a row-stochastic transition matrix.
///
/// # Examples
///
/// ```
/// use ale_markov::MarkovChain;
///
/// // Lazy walk on a triangle: every state keeps probability 1/2 in place.
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let chain = MarkovChain::lazy_random_walk(&adj)?;
/// assert_eq!(chain.len(), 3);
/// assert!(chain.matrix().is_doubly_stochastic());
/// # Ok::<(), ale_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    p: Matrix,
}

impl MarkovChain {
    /// Wraps an explicit transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotSquare`] for non-square input and
    /// [`MarkovError::NotStochastic`] when a row does not describe a
    /// probability distribution.
    pub fn from_matrix(p: Matrix) -> Result<Self, MarkovError> {
        if !p.is_square() {
            return Err(MarkovError::NotSquare {
                rows: p.rows(),
                cols: p.cols(),
            });
        }
        if let Some((row, sum)) = p.stochastic_violation() {
            return Err(MarkovError::NotStochastic { row, sum });
        }
        Ok(MarkovChain { p })
    }

    /// Builds the lazy random walk `P = ½I + ½D⁻¹A` over an adjacency list.
    ///
    /// This is exactly the walk used by the paper's random-walk probing: the
    /// token stays put with probability ½ and otherwise moves to a uniformly
    /// random neighbor.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for an empty graph or if any node has
    /// no neighbors (the walk would be undefined there).
    pub fn lazy_random_walk(adj: &[Vec<usize>]) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut p = Matrix::zeros(n, n);
        for (i, nbrs) in adj.iter().enumerate() {
            if nbrs.is_empty() {
                return Err(MarkovError::Empty);
            }
            p[(i, i)] = 0.5;
            let w = 0.5 / nbrs.len() as f64;
            for &j in nbrs {
                p[(i, j)] += w;
            }
        }
        MarkovChain::from_matrix(p)
    }

    /// Builds the diffusion matrix `S` of the `Avg` procedure: `s_ij = α`
    /// for every edge `{i, j}` and `s_ii = 1 − α·deg(i)`.
    ///
    /// With `α = 1/(2k^{1+ε})` this is the potential-averaging step in
    /// Algorithm 7 line 8 of the paper. `S` is symmetric (hence doubly
    /// stochastic) whenever `α·deg(i) ≤ 1` for every node.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`] for an empty graph,
    /// [`MarkovError::NotStochastic`] if `α·deg(i) > 1` for some node
    /// (negative self-loop probability).
    pub fn diffusion(adj: &[Vec<usize>], alpha: f64) -> Result<Self, MarkovError> {
        if adj.is_empty() {
            return Err(MarkovError::Empty);
        }
        let n = adj.len();
        let mut p = Matrix::zeros(n, n);
        for (i, nbrs) in adj.iter().enumerate() {
            let self_weight = 1.0 - alpha * nbrs.len() as f64;
            if self_weight < -EPS {
                return Err(MarkovError::NotStochastic {
                    row: i,
                    sum: self_weight,
                });
            }
            p[(i, i)] = self_weight.max(0.0);
            for &j in nbrs {
                p[(i, j)] += alpha;
            }
        }
        MarkovChain::from_matrix(p)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.p.rows()
    }

    /// Returns `true` when the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows the transition matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// Consumes the chain and returns the transition matrix.
    pub fn into_matrix(self) -> Matrix {
        self.p
    }

    /// Evolves a distribution one step: returns `µ·P`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `mu.len() != self.len()`.
    pub fn step(&self, mu: &[f64]) -> Result<Vec<f64>, MarkovError> {
        self.p.vec_mul(mu)
    }

    /// Checks irreducibility: the support digraph of `P` must be strongly
    /// connected. For the symmetric chains used in this workspace this is
    /// plain graph connectivity.
    pub fn is_irreducible(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        // Forward reachability from state 0.
        let forward = self.reachable_from(0, false);
        if forward.iter().any(|&r| !r) {
            return false;
        }
        // Backward reachability (reachability in the transpose).
        let backward = self.reachable_from(0, true);
        backward.iter().all(|&r| r)
    }

    fn reachable_from(&self, start: usize, transpose: bool) -> Vec<bool> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for (v, seen_v) in seen.iter_mut().enumerate() {
                let w = if transpose {
                    self.p[(v, u)]
                } else {
                    self.p[(u, v)]
                };
                if w > EPS && !*seen_v {
                    *seen_v = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Checks aperiodicity via the sufficient condition used throughout the
    /// paper: some state has a self-loop (`p_ii > 0`). Lazy walks and
    /// diffusion matrices always satisfy it.
    pub fn has_self_loop(&self) -> bool {
        (0..self.len()).any(|i| self.p[(i, i)] > EPS)
    }

    /// Computes the stationary distribution by power iteration on `µ ↦ µP`.
    ///
    /// For the doubly-stochastic chains in this workspace the result is the
    /// uniform distribution; the general implementation doubles as a test
    /// oracle for that fact.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Reducible`] when the chain is reducible, and
    /// [`MarkovError::NotConverged`] if `max_iters` steps do not reach the
    /// requested tolerance `tol`.
    pub fn stationary_distribution(
        &self,
        tol: f64,
        max_iters: usize,
    ) -> Result<Vec<f64>, MarkovError> {
        if !self.is_irreducible() {
            return Err(MarkovError::Reducible);
        }
        let n = self.len();
        let mut mu = vec![1.0 / n as f64; n];
        let mut residual = f64::INFINITY;
        for _ in 0..max_iters {
            let next = self.step(&mu)?;
            residual = vecops::max_abs_diff(&mu, &next);
            mu = next;
            if residual < tol {
                vecops::normalize_l1(&mut mu);
                return Ok(mu);
            }
        }
        Err(MarkovError::NotConverged {
            iterations: max_iters,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Vec<Vec<usize>> {
        vec![vec![1], vec![0, 2], vec![1]]
    }

    fn triangle() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![0, 2], vec![0, 1]]
    }

    #[test]
    fn lazy_walk_rows_stochastic_and_lazy() {
        let c = MarkovChain::lazy_random_walk(&path3()).unwrap();
        assert!(c.matrix().is_row_stochastic());
        for i in 0..3 {
            assert!((c.matrix()[(i, i)] - 0.5).abs() < 1e-12);
        }
        // Degree-1 endpoints put the other half on their single neighbor.
        assert!((c.matrix()[(0, 1)] - 0.5).abs() < 1e-12);
        assert!((c.matrix()[(1, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_regular_graph_is_doubly_stochastic() {
        let c = MarkovChain::lazy_random_walk(&triangle()).unwrap();
        assert!(c.matrix().is_doubly_stochastic());
        assert!(c.matrix().is_symmetric());
    }

    #[test]
    fn lazy_walk_rejects_isolated_node() {
        let adj = vec![vec![1], vec![0], vec![]];
        assert!(MarkovChain::lazy_random_walk(&adj).is_err());
        assert!(MarkovChain::lazy_random_walk(&[]).is_err());
    }

    #[test]
    fn diffusion_is_symmetric_doubly_stochastic() {
        let c = MarkovChain::diffusion(&path3(), 0.25).unwrap();
        assert!(c.matrix().is_symmetric());
        assert!(c.matrix().is_doubly_stochastic());
        assert_eq!(c.matrix()[(0, 1)], 0.25);
        assert_eq!(c.matrix()[(1, 1)], 0.5);
    }

    #[test]
    fn diffusion_rejects_overweight_alpha() {
        // Middle node has degree 2; alpha = 0.75 would give s_ii = -0.5.
        assert!(matches!(
            MarkovChain::diffusion(&path3(), 0.75),
            Err(MarkovError::NotStochastic { row: 1, .. })
        ));
    }

    #[test]
    fn from_matrix_validates() {
        let bad = Matrix::from_rows(&[vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap();
        assert!(matches!(
            MarkovChain::from_matrix(bad),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            MarkovChain::from_matrix(rect),
            Err(MarkovError::NotSquare { .. })
        ));
    }

    #[test]
    fn irreducibility_detects_disconnection() {
        let p = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap();
        let c = MarkovChain::from_matrix(p).unwrap();
        assert!(!c.is_irreducible());
        let c2 = MarkovChain::lazy_random_walk(&path3()).unwrap();
        assert!(c2.is_irreducible());
    }

    #[test]
    fn self_loops_present_on_lazy_chains() {
        assert!(MarkovChain::lazy_random_walk(&triangle())
            .unwrap()
            .has_self_loop());
    }

    #[test]
    fn stationary_uniform_on_doubly_stochastic() {
        let c = MarkovChain::diffusion(&triangle(), 0.2).unwrap();
        let pi = c.stationary_distribution(1e-12, 10_000).unwrap();
        for x in pi {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_weighted_on_path() {
        // Lazy walk on a path: stationary ∝ degree = (1, 2, 1)/4.
        let c = MarkovChain::lazy_random_walk(&path3()).unwrap();
        let pi = c.stationary_distribution(1e-13, 100_000).unwrap();
        assert!((pi[0] - 0.25).abs() < 1e-6);
        assert!((pi[1] - 0.5).abs() < 1e-6);
        assert!((pi[2] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn stationary_rejects_reducible() {
        let p = Matrix::identity(2);
        let c = MarkovChain::from_matrix(p).unwrap();
        assert!(matches!(
            c.stationary_distribution(1e-9, 100),
            Err(MarkovError::Reducible)
        ));
    }

    #[test]
    fn step_moves_mass() {
        let c = MarkovChain::lazy_random_walk(&path3()).unwrap();
        let mu = c.step(&[1.0, 0.0, 0.0]).unwrap();
        assert!((mu[0] - 0.5).abs() < 1e-12);
        assert!((mu[1] - 0.5).abs() < 1e-12);
        assert_eq!(mu[2], 0.0);
    }
}
