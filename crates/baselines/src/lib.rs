//! # ale-baselines — comparator leader-election protocols
//!
//! The related-work baselines the paper's Table 1 compares against, built
//! on the same anonymous CONGEST simulator as the main protocols so that
//! message/round counts are directly comparable:
//!
//! * [`flood_max`] — folklore all-nodes flood-max (knows `n`, `D`).
//! * [`kutten`] — Kutten et al. (J.ACM'15, \[16\]) style candidate flooding:
//!   `O(m)` messages, `O(D)` time with known `n`, `D`.
//! * [`gilbert`] — Gilbert–Robinson–Sourav (PODC'18, \[10\]) style random-walk
//!   token election: `O(t_mix·√n·polylog n)` messages with known `n` —
//!   the direct comparison target of Theorem 1.
//!
//! ## Example
//!
//! ```
//! use ale_baselines::flood_max::{run_flood_max, FloodMaxConfig};
//! use ale_graph::generators;
//!
//! let g = generators::hypercube(4)?;
//! let cfg = FloodMaxConfig::for_graph(&g);
//! let outcome = run_flood_max(&g, &cfg, 3)?;
//! assert_eq!(outcome.leader_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flood_max;
pub mod gilbert;
pub mod kutten;

pub use flood_max::{run_flood_max, FloodMaxConfig};
pub use gilbert::{run_gilbert, GilbertConfig};
pub use kutten::{run_kutten, KuttenConfig};
