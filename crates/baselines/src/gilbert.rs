//! Gilbert–Robinson–Sourav (PODC 2018) style random-walk baseline.
//!
//! The comparison target of Theorem 1: implicit leader election with known
//! `n` using `O(t_mix·√n·log^{7/2} n)` messages (\[10\] in the paper). The
//! defining structural difference from this paper's protocol is the
//! **absence of cautious-broadcast territories**: candidates must detect
//! each other purely through random-walk token meetings (birthday-paradox
//! style), which costs a `√n·polylog` *per-candidate* token budget instead
//! of `x = Θ̃(√(n/(Φ·t_mix)))` total walks probing pre-built territories.
//!
//! Faithful-shape reproduction (see DESIGN.md "Substitutions"):
//!
//! * candidates stand with probability `c·ln n/n` and draw IDs in `{1..n⁴}`;
//! * each candidate launches `b = ⌈√n·log₂ n⌉` lazy-walk tokens of length
//!   `c·t_mix·log₂ n`, so any two candidates' token clouds meet whp once
//!   mixed (`b²/n ≈ log² n` expected collisions per round);
//! * every node stores the largest token ID it has hosted; a token entering
//!   a node that has hosted a larger ID **dies**, and a kill report retraces
//!   the token's recorded path back to its origin (nodes keep per-token
//!   back-pointers), clearing the loser's flag — implicit election without
//!   any broadcast structure;
//! * messages per link per round carry one `(id, count)` batch per walking
//!   ID, as in the paper's CONGEST encoding of merged walks.

use ale_congest::message::{bits_for_u64, Payload};
use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Process};
use ale_core::{CoreError, ElectionOutcome};
use ale_graph::{Graph, Port};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration of the GRS-style baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertConfig {
    /// Known network size.
    pub n: usize,
    /// Mixing-time upper bound (drives walk length, as in \[10\]'s phases).
    pub tmix: u64,
    /// Constant in walk length and candidate probability.
    pub c: f64,
    /// CONGEST budget factor.
    pub congest_factor: usize,
}

impl GilbertConfig {
    /// Builds a config from knowledge `(n, t_mix)`.
    pub fn new(n: usize, tmix: u64) -> Self {
        GilbertConfig {
            n,
            tmix: tmix.max(1),
            c: 2.0,
            congest_factor: 8,
        }
    }

    /// `⌈log₂ n⌉`, at least 1.
    fn log2_n(&self) -> u64 {
        if self.n <= 1 {
            1
        } else {
            (usize::BITS - (self.n - 1).leading_zeros()) as u64
        }
    }

    /// Tokens per candidate: `⌈√n·log₂ n⌉`.
    pub fn tokens_per_candidate(&self) -> u64 {
        (((self.n as f64).sqrt() * self.log2_n() as f64).ceil() as u64).max(1)
    }

    /// Walk length `⌈c·t_mix·log₂ n⌉`.
    pub fn walk_length(&self) -> u64 {
        ((self.c * self.tmix as f64 * self.log2_n() as f64).ceil() as u64).max(1)
    }

    /// Candidate probability `min(1, c·ln n/n)`.
    pub fn candidate_probability(&self) -> f64 {
        let n = self.n as f64;
        (self.c * n.ln().max(1.0) / n).min(1.0)
    }

    /// Total protocol rounds: dispersal, retrace (bounded by the dispersal
    /// length along well-founded back-chains), port-conflict retry slack,
    /// and the decision round.
    pub fn total_rounds(&self) -> u64 {
        2 * self.walk_length() + 8
    }
}

/// Messages of the GRS-style baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrsMsg {
    /// `count` tokens of candidate `id` moving through this port.
    Tokens {
        /// Candidate ID the tokens carry.
        id: u64,
        /// Number of tokens in the batch.
        count: u64,
    },
    /// A kill report retracing towards the origin of candidate `id`.
    Kill {
        /// The killed candidate's ID.
        id: u64,
    },
}

impl Payload for GrsMsg {
    fn bit_size(&self) -> usize {
        match self {
            GrsMsg::Tokens { id, count } => 1 + bits_for_u64(*id) + bits_for_u64(*count),
            GrsMsg::Kill { id } => 1 + bits_for_u64(*id),
        }
    }
}

/// One node of the GRS-style baseline.
#[derive(Debug, Clone)]
pub struct GilbertProcess {
    cfg: GilbertConfig,
    candidate: bool,
    id: u64,
    /// Largest token ID this node has hosted.
    best_hosted: Option<u64>,
    /// Resident token counts per candidate ID.
    resident: BTreeMap<u64, u64>,
    /// Back-pointer: for candidate `id`, the port its tokens first arrived
    /// through. First-arrival chains are well-founded (each hop points to a
    /// strictly earlier hosting), so following them always reaches the
    /// origin.
    back: BTreeMap<u64, Port>,
    /// Kill reports to forward next round, with their next hop.
    kill_queue: Vec<(Port, u64)>,
    alive: bool,
    leader: bool,
    halted: bool,
}

impl GilbertProcess {
    /// Creates a node, drawing candidacy and ID.
    pub fn new(cfg: GilbertConfig, rng: &mut StdRng) -> Self {
        let candidate = rng.gen_bool(cfg.candidate_probability());
        let id_space = (cfg.n as u64).saturating_pow(4).max(2);
        let id = rng.gen_range(1..=id_space);
        GilbertProcess {
            cfg,
            candidate,
            id,
            best_hosted: candidate.then_some(id),
            resident: BTreeMap::new(),
            back: BTreeMap::new(),
            kill_queue: Vec::new(),
            alive: candidate,
            leader: false,
            halted: false,
        }
    }

    /// Whether this node stood as candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate
    }

    fn host(&mut self, id: u64, count: u64, from: Option<Port>) {
        // Kill rule: a token entering a node that hosted a bigger ID dies,
        // and a report retraces its path, starting back through the port
        // the dying token arrived on.
        if let Some(best) = self.best_hosted {
            if id < best {
                if self.candidate && self.id == id {
                    // The loser learns immediately at home.
                    self.alive = false;
                } else if let Some(p) = from {
                    self.kill_queue.push((p, id));
                }
                return;
            }
        }
        self.best_hosted = Some(self.best_hosted.map_or(id, |b| b.max(id)));
        if let Some(p) = from {
            self.back.entry(id).or_insert(p);
        }
        *self.resident.entry(id).or_insert(0) += count;
    }
}

impl Process for GilbertProcess {
    type Msg = GrsMsg;
    type Output = (bool, bool); // (candidate, leader)

    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<GrsMsg>],
        out: &mut OutCtx<'_, GrsMsg>,
    ) {
        for m in inbox {
            match m.msg {
                GrsMsg::Tokens { id, count } => self.host(id, count, Some(m.port)),
                GrsMsg::Kill { id } => {
                    if self.candidate && self.id == id {
                        self.alive = false;
                    } else if let Some(&p) = self.back.get(&id) {
                        self.kill_queue.push((p, id));
                    }
                    // A kill for an ID we never hosted and do not own has
                    // lost its trail (cannot happen along well-founded
                    // back-chains); dropping is safe.
                }
            }
        }

        let walk_len = self.cfg.walk_length();
        let total = self.cfg.total_rounds();

        if ctx.round >= total {
            self.leader = self.candidate && self.alive;
            self.halted = true;
            return;
        }

        // Forward kill reports one hop toward their next stops. Duplicate
        // (port, id) pairs collapse; port conflicts retry next round to
        // respect the one-message-per-port rule.
        self.kill_queue.sort_unstable();
        self.kill_queue.dedup();
        let mut port_used: BTreeMap<Port, ()> = BTreeMap::new();
        for (p, id) in std::mem::take(&mut self.kill_queue) {
            if port_used.insert(p, ()).is_none() {
                out.send(p, GrsMsg::Kill { id });
            } else {
                self.kill_queue.push((p, id));
            }
        }

        if ctx.round == 0 && self.candidate {
            // Launch b tokens to random neighbors.
            let mut moving: BTreeMap<Port, u64> = BTreeMap::new();
            for _ in 0..self.cfg.tokens_per_candidate() {
                *moving.entry(ctx.rng.gen_range(0..ctx.degree)).or_insert(0) += 1;
            }
            for (port, count) in moving {
                if !port_used.contains_key(&port) {
                    out.send(port, GrsMsg::Tokens { id: self.id, count });
                }
            }
            return;
        }

        if ctx.round < walk_len {
            // Lazy walk step for all resident tokens. CONGEST discipline:
            // at most one ID batch per port per round; surplus IDs wait
            // (rare — merged clouds dominate quickly).
            let resident = std::mem::take(&mut self.resident);
            let mut staying: BTreeMap<u64, u64> = BTreeMap::new();
            let mut moving: BTreeMap<(Port, u64), u64> = BTreeMap::new();
            for (id, count) in resident {
                for _ in 0..count {
                    if ctx.rng.gen_bool(0.5) {
                        *staying.entry(id).or_insert(0) += 1;
                    } else {
                        let p = ctx.rng.gen_range(0..ctx.degree);
                        *moving.entry((p, id)).or_insert(0) += 1;
                    }
                }
            }
            for ((port, id), count) in moving {
                if port_used.contains_key(&port) {
                    *staying.entry(id).or_insert(0) += count;
                    continue;
                }
                port_used.insert(port, ());
                out.send(port, GrsMsg::Tokens { id, count });
            }
            self.resident = staying;
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> (bool, bool) {
        (self.candidate, self.leader)
    }
}

/// Runs the GRS-style baseline.
///
/// # Errors
///
/// Propagates simulator errors; [`CoreError::InvalidConfig`] on a size
/// mismatch.
pub fn run_gilbert(
    graph: &Graph,
    cfg: &GilbertConfig,
    seed: u64,
) -> Result<ElectionOutcome, CoreError> {
    if graph.n() != cfg.n {
        return Err(CoreError::InvalidConfig {
            reason: format!("config n = {} but graph has {}", cfg.n, graph.n()),
        });
    }
    let budget = congest_budget(cfg.n, cfg.congest_factor);
    let cfg_copy = *cfg;
    let mut net = Network::from_fn(graph, seed, budget, |_deg, rng| {
        GilbertProcess::new(cfg_copy, rng)
    });
    let status = net.run_to_halt(cfg.total_rounds() + 4)?;
    let outputs = net.outputs();
    let leaders = outputs
        .iter()
        .enumerate()
        .filter(|(_, (_, l))| *l)
        .map(|(i, _)| i)
        .collect();
    let candidates = outputs
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| *c)
        .map(|(i, _)| i)
        .collect();
    Ok(ElectionOutcome::new(
        leaders,
        candidates,
        *net.metrics(),
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_core::SuccessStats;
    use ale_graph::generators;

    #[test]
    fn config_scales() {
        let cfg = GilbertConfig::new(100, 8);
        assert_eq!(cfg.tokens_per_candidate(), 70); // ceil(10 * 7)
        assert!(cfg.walk_length() >= 8);
        assert!(cfg.total_rounds() > cfg.walk_length());
    }

    #[test]
    fn elects_at_most_one_leader_and_usually_exactly_one() {
        let g = generators::random_regular(48, 4, 3).unwrap();
        let cfg = GilbertConfig::new(48, 8);
        let mut stats = SuccessStats::default();
        for seed in 0..25 {
            let o = run_gilbert(&g, &cfg, seed).unwrap();
            stats.record(&o);
        }
        assert!(
            stats.success_rate() > 0.8,
            "success {}/{} (none: {}, multi: {})",
            stats.unique,
            stats.runs,
            stats.none,
            stats.multiple
        );
    }

    #[test]
    fn token_budget_exceeds_ours() {
        // The GRS-shape baseline needs √n·log n tokens *per candidate*;
        // the paper's protocol uses x = Θ̃(√(n/(Φ t_mix))) *total* walks on
        // a well-connected graph. This asymmetry is Table 1's message gap.
        let cfg = GilbertConfig::new(1024, 4);
        assert!(cfg.tokens_per_candidate() >= 320);
    }

    #[test]
    fn kill_reports_clear_losers() {
        // On a small dense graph every loser should be reached whp.
        let g = generators::complete(24).unwrap();
        let cfg = GilbertConfig::new(24, 2);
        let mut split = 0;
        for seed in 0..25 {
            let o = run_gilbert(&g, &cfg, seed).unwrap();
            if o.leader_count() > 1 {
                split += 1;
            }
        }
        assert!(split <= 1, "split brain in {split}/25 runs on K24");
    }

    #[test]
    fn rejects_wrong_size() {
        let g = generators::cycle(6).unwrap();
        let cfg = GilbertConfig::new(60, 4);
        assert!(run_gilbert(&g, &cfg, 0).is_err());
    }
}
