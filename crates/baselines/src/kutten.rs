//! Kutten-style candidate flooding baseline.
//!
//! Models the knowledge regime of Kutten, Pandurangan, Peleg, Robinson &
//! Trehan (J. ACM 2015, \[16\] in the paper): `n` and `D` known, success whp.
//! A node stands as candidate with probability `c·ln n / n`, draws a random
//! rank, and the network floods the maximum **candidate** rank for `D`
//! rounds (forwarding improvements only). Expected messages are dominated
//! by `O(m)` flood traffic per surviving rank prefix — the `O(m)`-messages
//! `O(D)`-time point in Table 1's upper rows — while non-candidate nodes
//! originate nothing.
//!
//! This is a *baseline of the same shape*, not a line-by-line reproduction
//! of \[16\] (whose protocol suite spans several knowledge regimes; see
//! DESIGN.md "Substitutions").

use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Process};
use ale_core::{CoreError, ElectionOutcome};
use ale_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration for the Kutten-style baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KuttenConfig {
    /// Known network size.
    pub n: usize,
    /// Known diameter.
    pub diameter: u64,
    /// Candidate-probability constant (`c·ln n / n`).
    pub c: f64,
    /// CONGEST budget factor.
    pub congest_factor: usize,
}

impl KuttenConfig {
    /// Builds a config from the graph with default constants.
    pub fn for_graph(graph: &Graph) -> Self {
        KuttenConfig {
            n: graph.n(),
            diameter: graph.diameter() as u64,
            c: 2.0,
            congest_factor: 8,
        }
    }

    /// Candidate probability `min(1, c·ln n/n)`.
    pub fn candidate_probability(&self) -> f64 {
        let n = self.n as f64;
        (self.c * n.ln().max(1.0) / n).min(1.0)
    }
}

/// One node of the Kutten-style baseline.
#[derive(Debug, Clone)]
pub struct KuttenProcess {
    candidate: bool,
    rank: u64,
    best: Option<u64>,
    rounds: u64,
    dirty: bool,
    leader: bool,
    halted: bool,
}

impl KuttenProcess {
    /// Creates a node, drawing candidacy and rank.
    pub fn new(cfg: &KuttenConfig, rng: &mut StdRng) -> Self {
        let candidate = rng.gen_bool(cfg.candidate_probability());
        let id_space = (cfg.n as u64).saturating_pow(4).max(2);
        let rank = rng.gen_range(1..=id_space);
        KuttenProcess {
            candidate,
            rank,
            best: candidate.then_some(rank),
            rounds: cfg.diameter.max(1),
            dirty: candidate,
            leader: false,
            halted: false,
        }
    }

    /// Whether this node stood as a candidate.
    pub fn is_candidate(&self) -> bool {
        self.candidate
    }
}

impl Process for KuttenProcess {
    type Msg = u64;
    type Output = (bool, bool); // (candidate, leader)

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            if self.best.is_none_or(|b| m.msg > b) {
                self.best = Some(m.msg);
                self.dirty = true;
            }
        }
        if ctx.round >= self.rounds {
            self.leader = self.candidate && self.best == Some(self.rank);
            self.halted = true;
            return;
        }
        if self.dirty {
            self.dirty = false;
            out.broadcast(self.best.expect("dirty implies a value"));
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> (bool, bool) {
        (self.candidate, self.leader)
    }
}

/// Runs the Kutten-style baseline.
///
/// # Errors
///
/// Propagates simulator errors; [`CoreError::InvalidConfig`] on a size
/// mismatch.
pub fn run_kutten(
    graph: &Graph,
    cfg: &KuttenConfig,
    seed: u64,
) -> Result<ElectionOutcome, CoreError> {
    if graph.n() != cfg.n {
        return Err(CoreError::InvalidConfig {
            reason: format!("config n = {} but graph has {}", cfg.n, graph.n()),
        });
    }
    let budget = congest_budget(cfg.n, cfg.congest_factor);
    let cfg_copy = *cfg;
    let mut net = Network::from_fn(graph, seed, budget, |_deg, rng| {
        KuttenProcess::new(&cfg_copy, rng)
    });
    let status = net.run_to_halt(cfg.diameter + 4)?;
    let outputs = net.outputs();
    let leaders = outputs
        .iter()
        .enumerate()
        .filter(|(_, (_, l))| *l)
        .map(|(i, _)| i)
        .collect();
    let candidates = outputs
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| *c)
        .map(|(i, _)| i)
        .collect();
    Ok(ElectionOutcome::new(
        leaders,
        candidates,
        *net.metrics(),
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_core::SuccessStats;
    use ale_graph::generators;

    #[test]
    fn elects_unique_leader_whp() {
        let g = generators::random_regular(60, 4, 1).unwrap();
        let cfg = KuttenConfig::for_graph(&g);
        let mut stats = SuccessStats::default();
        for seed in 0..40 {
            stats.record(&run_kutten(&g, &cfg, seed).unwrap());
        }
        // Failures only when zero candidates stand (prob ~ n^-c) or ranks
        // collide (prob ~ n^-2); both negligible at these sizes.
        assert!(
            stats.success_rate() > 0.9,
            "success {}/{}",
            stats.unique,
            stats.runs
        );
        assert_eq!(stats.multiple, 0, "split brain must not occur");
    }

    #[test]
    fn fewer_messages_than_full_flood() {
        let g = generators::grid2d(6, 6, false).unwrap();
        let kcfg = KuttenConfig::for_graph(&g);
        let fcfg = crate::flood_max::FloodMaxConfig::for_graph(&g);
        let mut k_total = 0u64;
        let mut f_total = 0u64;
        for seed in 0..10 {
            k_total += run_kutten(&g, &kcfg, seed).unwrap().metrics.messages;
            f_total += crate::flood_max::run_flood_max(&g, &fcfg, seed)
                .unwrap()
                .metrics
                .messages;
        }
        assert!(
            k_total < f_total,
            "candidate flood ({k_total}) should beat all-nodes flood ({f_total})"
        );
    }

    #[test]
    fn zero_candidates_means_zero_leaders() {
        let g = generators::cycle(8).unwrap();
        let mut cfg = KuttenConfig::for_graph(&g);
        cfg.c = 1e-9; // force no candidates
        let o = run_kutten(&g, &cfg, 7).unwrap();
        assert_eq!(o.leader_count(), 0);
        assert_eq!(o.candidates.len(), 0);
        assert_eq!(o.metrics.messages, 0);
    }

    #[test]
    fn rejects_wrong_size() {
        let g = generators::cycle(6).unwrap();
        let mut cfg = KuttenConfig::for_graph(&g);
        cfg.n = 60;
        assert!(run_kutten(&g, &cfg, 0).is_err());
    }
}
