//! Naive flood-max baseline.
//!
//! Every node draws a random ID from `{1..n⁴}` and floods the maximum for
//! `D` (diameter) rounds; the unique maximum's holder raises its flag.
//! Requires knowing `n` (ID range) and `D` (when to stop): the classic
//! folklore algorithm the paper's related-work baselines refine.
//!
//! Two flooding disciplines are provided:
//!
//! * [`FloodDiscipline::OnChange`] — forward only when the known maximum
//!   improves: `O(m)`–`O(m·n)` messages depending on arrival order
//!   (`O(m·log n)` expected on random orders), `O(D)` rounds;
//! * [`FloodDiscipline::EveryRound`] — the textbook repeat-everything
//!   variant: exactly `m·2·D` messages, useful as an upper anchor in the
//!   Table 1 experiment.

use ale_congest::{congest_budget, Incoming, Network, NodeCtx, OutCtx, Process};
use ale_core::{CoreError, ElectionOutcome};
use ale_graph::Graph;
use rand::rngs::StdRng;
use rand::Rng;

/// Forwarding discipline for the flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodDiscipline {
    /// Forward only improvements.
    OnChange,
    /// Re-broadcast the current maximum every round.
    EveryRound,
}

/// Configuration for the flood-max baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodMaxConfig {
    /// Known network size (ID range is `{1..n⁴}`).
    pub n: usize,
    /// Known diameter (flood duration).
    pub diameter: u64,
    /// Forwarding discipline.
    pub discipline: FloodDiscipline,
    /// CONGEST budget factor.
    pub congest_factor: usize,
}

impl FloodMaxConfig {
    /// Builds a config with the graph's exact diameter and on-change
    /// forwarding.
    pub fn for_graph(graph: &Graph) -> Self {
        FloodMaxConfig {
            n: graph.n(),
            diameter: graph.diameter() as u64,
            discipline: FloodDiscipline::OnChange,
            congest_factor: 8,
        }
    }
}

/// One node of the flood-max baseline.
#[derive(Debug, Clone)]
pub struct FloodMaxProcess {
    id: u64,
    best: u64,
    rounds: u64,
    discipline: FloodDiscipline,
    dirty: bool,
    leader: bool,
    halted: bool,
}

impl FloodMaxProcess {
    /// Creates a node with a random ID from `{1..n⁴}`.
    pub fn new(cfg: &FloodMaxConfig, rng: &mut StdRng) -> Self {
        let id_space = (cfg.n as u64).saturating_pow(4).max(2);
        let id = rng.gen_range(1..=id_space);
        FloodMaxProcess {
            id,
            best: id,
            // Flood for D rounds plus one decision round; every node knows
            // the global max after D rounds of synchronous flooding.
            rounds: cfg.diameter.max(1),
            discipline: cfg.discipline,
            dirty: true,
            leader: false,
            halted: false,
        }
    }

    /// The node's random ID.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Process for FloodMaxProcess {
    type Msg = u64;
    type Output = bool;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            if m.msg > self.best {
                self.best = m.msg;
                self.dirty = true;
            }
        }
        if ctx.round >= self.rounds {
            self.leader = self.best == self.id;
            self.halted = true;
            return;
        }
        let send = match self.discipline {
            FloodDiscipline::EveryRound => true,
            FloodDiscipline::OnChange => self.dirty,
        };
        self.dirty = false;
        if send {
            out.broadcast(self.best);
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> bool {
        self.leader
    }
}

/// Runs flood-max on `graph`.
///
/// # Errors
///
/// Propagates simulator errors; [`CoreError::InvalidConfig`] on a size
/// mismatch.
pub fn run_flood_max(
    graph: &Graph,
    cfg: &FloodMaxConfig,
    seed: u64,
) -> Result<ElectionOutcome, CoreError> {
    if graph.n() != cfg.n {
        return Err(CoreError::InvalidConfig {
            reason: format!("config n = {} but graph has {}", cfg.n, graph.n()),
        });
    }
    let budget = congest_budget(cfg.n, cfg.congest_factor);
    let cfg_copy = *cfg;
    let mut net = Network::from_fn(graph, seed, budget, |_deg, rng| {
        FloodMaxProcess::new(&cfg_copy, rng)
    });
    let status = net.run_to_halt(cfg.diameter + 4)?;
    let leaders = net
        .outputs()
        .iter()
        .enumerate()
        .filter(|(_, &l)| l)
        .map(|(i, _)| i)
        .collect();
    let candidates = (0..graph.n()).collect();
    Ok(ElectionOutcome::new(
        leaders,
        candidates,
        *net.metrics(),
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    #[test]
    fn elects_exactly_one_leader() {
        let g = generators::random_regular(40, 3, 2).unwrap();
        let cfg = FloodMaxConfig::for_graph(&g);
        for seed in 0..20 {
            let o = run_flood_max(&g, &cfg, seed).unwrap();
            assert_eq!(o.leader_count(), 1, "seed {seed}");
        }
    }

    #[test]
    fn every_round_message_count_is_exact() {
        let g = generators::cycle(10).unwrap();
        let mut cfg = FloodMaxConfig::for_graph(&g);
        cfg.discipline = FloodDiscipline::EveryRound;
        let o = run_flood_max(&g, &cfg, 1).unwrap();
        // 2m messages per round for D rounds.
        assert_eq!(o.metrics.messages, 2 * 10 * g.diameter() as u64);
    }

    #[test]
    fn on_change_sends_fewer_messages() {
        let g = generators::grid2d(5, 5, false).unwrap();
        let mut every = FloodMaxConfig::for_graph(&g);
        every.discipline = FloodDiscipline::EveryRound;
        let on_change = FloodMaxConfig::for_graph(&g);
        let oe = run_flood_max(&g, &every, 3).unwrap();
        let oc = run_flood_max(&g, &on_change, 3).unwrap();
        assert!(oc.metrics.messages < oe.metrics.messages);
        assert_eq!(oc.leader_count(), 1);
    }

    #[test]
    fn rejects_wrong_size() {
        let g = generators::cycle(6).unwrap();
        let cfg = FloodMaxConfig {
            n: 7,
            diameter: 3,
            discipline: FloodDiscipline::OnChange,
            congest_factor: 8,
        };
        assert!(run_flood_max(&g, &cfg, 0).is_err());
    }

    #[test]
    fn runs_exactly_diameter_plus_decision() {
        let g = generators::path(9).unwrap();
        let cfg = FloodMaxConfig::for_graph(&g);
        let o = run_flood_max(&g, &cfg, 5).unwrap();
        assert_eq!(o.metrics.rounds, g.diameter() as u64 + 1);
    }
}
