//! The anonymous process abstraction.
//!
//! A [`Process`] is one node's protocol state machine. Anonymity is enforced
//! structurally: the only information a process can observe is
//!
//! * its own degree (port count),
//! * the current round number (the network is globally synchronous),
//! * messages received this round, tagged with the **local port** they
//!   arrived through, and
//! * its private random bits.
//!
//! Host-side node ids never reach the process; they exist only to seed RNGs
//! and to let the harness inspect outcomes.

use crate::message::Payload;
use rand::rngs::StdRng;

/// Per-round execution context handed to a process.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The node's degree; ports are `0..degree`.
    pub degree: usize,
    /// Current round number (0 for the first round).
    pub round: u64,
    /// The node's private randomness (seeded by the harness; the seed path
    /// is invisible to the protocol, standing in for physical noise).
    pub rng: &'a mut StdRng,
}

/// A message delivered to a process, tagged with the arrival port.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// The local port the message arrived through.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// Messages a process wants to send this round: `(port, payload)` pairs.
///
/// At most one message per port per round is legal in the CONGEST model;
/// the simulator records violations (see
/// [`Metrics::multi_send_violations`](crate::metrics::Metrics)).
pub type Outbox<M> = Vec<(usize, M)>;

/// One node's protocol state machine.
///
/// The simulator drives every process in lock-step: each round it calls
/// [`Process::round`] with the messages that arrived, collects the outbox,
/// and delivers synchronously for the next round. Round 0 is called with an
/// empty inbox (it plays the role of `init`).
pub trait Process {
    /// Message payload type.
    type Msg: Payload;
    /// Final output extracted by the harness (e.g. a leader flag).
    type Output: Clone;

    /// Executes one synchronous round, returning messages to send.
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<Self::Msg>]) -> Outbox<Self::Msg>;

    /// Whether this process has terminated (stopped sending and deciding).
    ///
    /// Irrevocable protocols halt (Definition 1 requires all nodes to stop);
    /// revocable protocols may never halt (Definition 2) — the default
    /// `false` models that.
    fn is_halted(&self) -> bool {
        false
    }

    /// The process's current output (may change over time for revocable
    /// protocols — that is the point of revocability).
    fn output(&self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// A process that counts messages and echoes on port 0.
    #[derive(Debug, Default)]
    struct Echo {
        seen: u64,
        done: bool,
    }

    impl Process for Echo {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
            self.seen += inbox.len() as u64;
            if ctx.round >= 3 {
                self.done = true;
                return Vec::new();
            }
            vec![(0, ctx.round)]
        }

        fn is_halted(&self) -> bool {
            self.done
        }

        fn output(&self) -> u64 {
            self.seen
        }
    }

    #[test]
    fn process_trait_is_usable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Echo::default();
        let mut ctx = NodeCtx {
            degree: 1,
            round: 0,
            rng: &mut rng,
        };
        let out = p.round(&mut ctx, &[]);
        assert_eq!(out, vec![(0, 0)]);
        assert!(!p.is_halted());
        let mut ctx3 = NodeCtx {
            degree: 1,
            round: 3,
            rng: &mut rng,
        };
        let out = p.round(
            &mut ctx3,
            &[Incoming { port: 0, msg: 9 }, Incoming { port: 0, msg: 8 }],
        );
        assert!(out.is_empty());
        assert!(p.is_halted());
        assert_eq!(p.output(), 2);
    }

    #[test]
    fn ctx_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(7);
        let ctx = NodeCtx {
            degree: 4,
            round: 0,
            rng: &mut rng,
        };
        let x: f64 = ctx.rng.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
