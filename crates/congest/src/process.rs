//! The anonymous process abstraction and the send handle.
//!
//! A [`Process`] is one node's protocol state machine. Anonymity is enforced
//! structurally: the only information a process can observe is
//!
//! * its own degree (port count),
//! * the current round number (the network is globally synchronous),
//! * messages received this round, tagged with the **local port** they
//!   arrived through, and
//! * its private random bits.
//!
//! Host-side node ids never reach the process; they exist only to seed RNGs
//! and to let the harness inspect outcomes.
//!
//! # Sending: the `Outbox` → [`OutCtx`] migration
//!
//! Until the arena engine landed, `Process::round` *returned* an
//! `Outbox<Msg> = Vec<(port, msg)>` that the network validated and staged
//! afterwards — one heap allocation per node per round plus a full rescan
//! at commit time. The current API inverts the flow: the network hands the
//! process a send handle, [`OutCtx`], and every [`OutCtx::send`] writes
//! straight into the network-owned, capacity-retained staging arena,
//! accumulating bit counters and detecting multi-sends at the moment of
//! the send (commit folds the counters into the metrics once per round).
//!
//! Migrating an implementation is mechanical. Before:
//!
//! ```text
//! fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
//!     for m in inbox { self.best = self.best.max(m.msg); }
//!     (0..ctx.degree).map(|p| (p, self.best)).collect()
//! }
//! ```
//!
//! After — same observable behavior, zero per-round allocation:
//!
//! ```
//! use ale_congest::{Incoming, NodeCtx, OutCtx, Process};
//!
//! #[derive(Debug, Default)]
//! struct Max { best: u64 }
//! impl Process for Max {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn round(
//!         &mut self,
//!         ctx: &mut NodeCtx<'_>,
//!         inbox: &[Incoming<u64>],
//!         out: &mut OutCtx<'_, u64>,
//!     ) {
//!         for m in inbox { self.best = self.best.max(m.msg); }
//!         out.broadcast(self.best); // or: for p in 0..ctx.degree { out.send(p, self.best) }
//!     }
//!     fn output(&self) -> u64 { self.best }
//! }
//!
//! // Unit tests (and the reference engine) capture sends with a collector:
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
//! let mut ctx = NodeCtx { degree: 2, round: 0, rng: &mut rng };
//! let mut sent = Vec::new();
//! Max { best: 7 }.round(&mut ctx, &[], &mut OutCtx::collector(2, &mut sent));
//! assert_eq!(sent, vec![(0, 7), (1, 7)]);
//! ```

use crate::error::CongestError;
use crate::message::Payload;
use crate::metrics::Metrics;
use ale_graph::Graph;
use rand::rngs::StdRng;

/// Per-round execution context handed to a process.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The node's degree; ports are `0..degree`.
    pub degree: usize,
    /// Current round number (0 for the first round).
    pub round: u64,
    /// The node's private randomness (seeded by the harness; the seed path
    /// is invisible to the protocol, standing in for physical noise).
    pub rng: &'a mut StdRng,
}

/// A message delivered to a process, tagged with the arrival port.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// The local port the message arrived through.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// Per-round delivery counters accumulated at send time. Commit folds the
/// whole batch into [`Metrics`](crate::metrics::Metrics) with one
/// [`record_round`](crate::metrics::Metrics::record_round) call (the
/// counters also feed the [`RoundTrace`](crate::metrics::RoundTrace)), so
/// the per-send hot path touches only this small stack-local struct.
#[derive(Debug, Default)]
pub(crate) struct RoundStats {
    pub(crate) messages: u64,
    pub(crate) bits: u64,
    pub(crate) max_bits: usize,
    /// Messages wider than the CONGEST budget, counted per message at send
    /// time (the aggregate alone could not recover the per-message test).
    pub(crate) oversize: u64,
    /// Sends the adversary discarded this round (asynchronous engine only;
    /// always 0 on the fault-free synchronous engines).
    pub(crate) dropped: u64,
    /// Extra copies the adversary injected this round (asynchronous engine
    /// only; always 0 on the fault-free synchronous engines).
    pub(crate) duplicated: u64,
}

/// The arena engine's send path: borrowed slices of network-owned state,
/// packed per node by [`Network::step`](crate::network::Network::step).
pub(crate) struct EngineSink<'a, M> {
    /// Host-side sender id — used only for error diagnostics.
    pub(crate) node: usize,
    pub(crate) graph: &'a Graph,
    /// Target node of every staged message, parallel to `staged_msgs`.
    pub(crate) staged_targets: &'a mut Vec<u32>,
    /// The staging arena: messages in send order, rewritten to delivery
    /// order (grouped by target) at commit time.
    pub(crate) staged_msgs: &'a mut Vec<Incoming<M>>,
    /// Per-target message counts for the commit-time counting sort.
    pub(crate) counts: &'a mut [u32],
    /// Targets with at least one staged message this round.
    pub(crate) touched: &'a mut Vec<u32>,
    /// Port-use marks for multi-send detection (`marks[p] == mark` ⇔ port
    /// `p` already used by this node this round); epoch-stamped so it is
    /// never cleared.
    pub(crate) marks: &'a mut [u64],
    pub(crate) mark: u64,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) stats: &'a mut RoundStats,
    /// First protocol violation this round; once set, sends are ignored and
    /// the network drops the whole round.
    pub(crate) failure: &'a mut Option<CongestError>,
}

/// Where [`OutCtx::send`] writes.
pub(crate) enum Sink<'a, M> {
    /// The arena engine (metered, validated, staged for delivery).
    Engine(EngineSink<'a, M>),
    /// Plain collection of `(port, msg)` pairs — no metering, no
    /// validation — for unit tests and the reference engine.
    Collect(&'a mut Vec<(usize, M)>),
}

/// The send handle passed to [`Process::round`].
///
/// Created by the network (or by [`OutCtx::collector`] in tests); a process
/// cannot construct the engine-backed variant itself, which is what keeps
/// the metering honest.
///
/// Under the arena engine every [`OutCtx::send`]:
///
/// 1. validates the port (an invalid port latches a
///    [`CongestError::InvalidPort`]; the message and all later sends of the
///    round are dropped, and the network returns the error);
/// 2. records a multi-send violation if the port was already used this
///    round (the duplicate is still delivered — counted, not merged);
/// 3. meters the payload's [`bit_size`](crate::message::Payload::bit_size)
///    into the per-round counters, which commit folds into the run metrics
///    in one batched update;
/// 4. stages the message in the network's flat delivery arena with a
///    single fused target/reverse-port lookup.
pub struct OutCtx<'a, M: Payload> {
    pub(crate) degree: usize,
    pub(crate) sink: Sink<'a, M>,
}

impl<'a, M: Payload> OutCtx<'a, M> {
    /// A detached handle that appends `(port, msg)` pairs to `buf` instead
    /// of staging into an engine — the unit-test and reference-engine
    /// stand-in for the pre-arena `Outbox` return value. No validation or
    /// metering happens in this mode; invalid ports and multi-sends are
    /// recorded verbatim for the caller to inspect.
    pub fn collector(degree: usize, buf: &'a mut Vec<(usize, M)>) -> Self {
        OutCtx {
            degree,
            sink: Sink::Collect(buf),
        }
    }

    /// The sending node's degree (same value as
    /// [`NodeCtx::degree`]; repeated here so helpers that only receive the
    /// send handle can iterate ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Sends `msg` through `port` this round.
    ///
    /// See the [type docs](OutCtx) for what a send does under the engine.
    /// At most one message per port per round is legal in the CONGEST
    /// model; violations are metered as
    /// [`multi_send_violations`](crate::metrics::Metrics::multi_send_violations).
    pub fn send(&mut self, port: usize, msg: M) {
        match &mut self.sink {
            Sink::Collect(buf) => buf.push((port, msg)),
            Sink::Engine(e) => {
                if e.failure.is_some() {
                    // The round is already being dropped; swallow the send
                    // exactly as the outbox engine ignored entries after
                    // the first invalid one.
                    return;
                }
                if port >= self.degree {
                    *e.failure = Some(CongestError::InvalidPort {
                        node: e.node,
                        port,
                        degree: self.degree,
                    });
                    return;
                }
                if e.marks[port] == e.mark {
                    e.metrics.record_multi_send();
                } else {
                    e.marks[port] = e.mark;
                }
                let bits = msg.bit_size();
                e.stats.messages += 1;
                e.stats.bits += bits as u64;
                if bits > e.stats.max_bits {
                    e.stats.max_bits = bits;
                }
                let budget = e.metrics.budget_bits;
                if budget > 0 && bits > budget {
                    e.stats.oversize += 1;
                }
                let (target, arrival) = e.graph.port_and_reverse(e.node, port);
                if e.counts[target] == 0 {
                    e.touched.push(target as u32);
                }
                e.counts[target] += 1;
                e.staged_targets.push(target as u32);
                e.staged_msgs.push(Incoming { port: arrival, msg });
            }
        }
    }

    /// Sends a clone of `msg` through every port — the all-neighbors
    /// broadcast most protocols use. Equivalent to
    /// `for p in 0..degree { send(p, msg.clone()) }` (the last send moves
    /// instead of cloning).
    pub fn broadcast(&mut self, msg: M) {
        if self.degree == 0 {
            return;
        }
        for p in 0..self.degree - 1 {
            self.send(p, msg.clone());
        }
        self.send(self.degree - 1, msg);
    }
}

/// One node's protocol state machine.
///
/// The simulator drives every process in lock-step: each round it calls
/// [`Process::round`] with the messages that arrived and a send handle for
/// the messages to deliver next round. Round 0 is called with an empty
/// inbox (it plays the role of `init`).
pub trait Process {
    /// Message payload type.
    type Msg: Payload;
    /// Final output extracted by the harness (e.g. a leader flag).
    type Output: Clone;

    /// Executes one synchronous round, sending through `out`.
    fn round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<Self::Msg>],
        out: &mut OutCtx<'_, Self::Msg>,
    );

    /// Whether this process has terminated (stopped sending and deciding).
    ///
    /// Irrevocable protocols halt (Definition 1 requires all nodes to stop);
    /// revocable protocols may never halt (Definition 2) — the default
    /// `false` models that.
    ///
    /// **Engine invariant — halting is permanent.** The network stops
    /// polling a process once this returns `true` (it leaves the active
    /// set, its inbox is discarded, and `round` is never called again), so
    /// the answer must be a pure function of state mutated in
    /// [`Process::round`]: a process that reports halted must keep
    /// reporting halted.
    fn is_halted(&self) -> bool {
        false
    }

    /// The process's current output (may change over time for revocable
    /// protocols — that is the point of revocability).
    fn output(&self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// A process that counts messages and echoes on port 0.
    #[derive(Debug, Default)]
    struct Echo {
        seen: u64,
        done: bool,
    }

    impl Process for Echo {
        type Msg = u64;
        type Output = u64;

        fn round(
            &mut self,
            ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            self.seen += inbox.len() as u64;
            if ctx.round >= 3 {
                self.done = true;
                return;
            }
            out.send(0, ctx.round);
        }

        fn is_halted(&self) -> bool {
            self.done
        }

        fn output(&self) -> u64 {
            self.seen
        }
    }

    #[test]
    fn process_trait_is_usable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = Echo::default();
        let mut ctx = NodeCtx {
            degree: 1,
            round: 0,
            rng: &mut rng,
        };
        let mut sent = Vec::new();
        p.round(&mut ctx, &[], &mut OutCtx::collector(1, &mut sent));
        assert_eq!(sent, vec![(0, 0)]);
        assert!(!p.is_halted());
        let mut ctx3 = NodeCtx {
            degree: 1,
            round: 3,
            rng: &mut rng,
        };
        let mut sent = Vec::new();
        p.round(
            &mut ctx3,
            &[Incoming { port: 0, msg: 9 }, Incoming { port: 0, msg: 8 }],
            &mut OutCtx::collector(1, &mut sent),
        );
        assert!(sent.is_empty());
        assert!(p.is_halted());
        assert_eq!(p.output(), 2);
    }

    #[test]
    fn ctx_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(7);
        let ctx = NodeCtx {
            degree: 4,
            round: 0,
            rng: &mut rng,
        };
        let x: f64 = ctx.rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn collector_captures_sends_verbatim() {
        let mut buf: Vec<(usize, u64)> = Vec::new();
        let mut out = OutCtx::collector(3, &mut buf);
        assert_eq!(out.degree(), 3);
        out.send(2, 9);
        out.send(2, 9); // duplicate port: kept, not merged
        out.send(7, 1); // invalid port: kept — validation is the engine's job
        out.broadcast(5);
        assert_eq!(buf, vec![(2, 9), (2, 9), (7, 1), (0, 5), (1, 5), (2, 5)]);
    }

    #[test]
    fn broadcast_on_degree_zero_is_a_noop() {
        let mut buf: Vec<(usize, u64)> = Vec::new();
        OutCtx::collector(0, &mut buf).broadcast(1);
        assert!(buf.is_empty());
    }
}
