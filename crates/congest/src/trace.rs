//! Live per-round tracing hooks for the engines.
//!
//! [`RoundTrace`](crate::metrics::RoundTrace) recording
//! ([`Network::enable_trace`](crate::network::Network::enable_trace))
//! accumulates a `Vec` the caller inspects *after* the run. A
//! [`TraceSink`] is the streaming complement: the engine calls
//! [`TraceSink::on_round`] at the end of every successful round and
//! [`TraceSink::on_run_end`] when the network is dropped, so an
//! observability layer can watch a run without buffering it.
//!
//! Two attachment paths exist:
//!
//! * explicitly, via `set_trace_sink` on either engine;
//! * ambiently, via [`install_trace_factory`]: a **thread-local** factory
//!   consulted by every network constructor on this thread. This is how a
//!   harness observes networks built *inside* library code it does not
//!   control (e.g. `ale-core`'s runners construct their own `Network`).
//!   The factory is thread-local on purpose — parallel workers install
//!   factories tagged with their own trial ids without racing.
//!
//! When no sink is attached the engines pay one `Option` check per round;
//! construction pays one thread-local read. Sinks never observe failed
//! rounds (they are dropped wholesale, see the engine invariants).

use crate::metrics::{Metrics, RoundInfo};
use std::cell::RefCell;
use std::fmt;

/// Streaming observer of a network run. Implementations must be cheap:
/// `on_round` runs on the engine's hot path.
pub trait TraceSink: Send {
    /// Called at the end of every successfully committed round.
    fn on_round(&mut self, info: &RoundInfo);

    /// Called once, with the final metrics, when the network is dropped
    /// (or replaced via `set_trace_sink`).
    fn on_run_end(&mut self, metrics: &Metrics) {
        let _ = metrics;
    }
}

type Factory = Box<dyn Fn() -> Box<dyn TraceSink>>;

thread_local! {
    static FACTORY: RefCell<Option<Factory>> = const { RefCell::new(None) };
}

/// Installs a thread-local sink factory: every [`Network`] or
/// [`ReferenceNetwork`] constructed on this thread attaches a fresh sink
/// from `f` until [`clear_trace_factory`] is called.
///
/// [`Network`]: crate::network::Network
/// [`ReferenceNetwork`]: crate::reference::ReferenceNetwork
pub fn install_trace_factory<F>(f: F)
where
    F: Fn() -> Box<dyn TraceSink> + 'static,
{
    FACTORY.with(|c| *c.borrow_mut() = Some(Box::new(f)));
}

/// Removes this thread's sink factory (no-op if none is installed).
pub fn clear_trace_factory() {
    FACTORY.with(|c| *c.borrow_mut() = None);
}

/// A sink from this thread's factory, if one is installed.
fn make_sink() -> Option<Box<dyn TraceSink>> {
    FACTORY.with(|c| c.borrow().as_ref().map(|f| f()))
}

/// The engines' sink slot: keeps the `#[derive(Debug)]` on the network
/// structs working (`dyn TraceSink` has no `Debug` bound) and funnels
/// end-of-run notification through one place.
pub(crate) struct TraceSlot(Option<Box<dyn TraceSink>>);

impl TraceSlot {
    /// A slot holding whatever this thread's factory produces (possibly
    /// nothing).
    pub(crate) fn attach() -> TraceSlot {
        TraceSlot(make_sink())
    }

    /// Replaces the sink, notifying the previous one (if any) that its
    /// run is over.
    pub(crate) fn replace(&mut self, sink: Box<dyn TraceSink>, metrics: &Metrics) {
        self.finish(metrics);
        self.0 = Some(sink);
    }

    /// Forwards one round observation.
    #[inline]
    pub(crate) fn on_round(&mut self, info: &RoundInfo) {
        if let Some(sink) = self.0.as_mut() {
            sink.on_round(info);
        }
    }

    /// Notifies and detaches the sink (idempotent).
    pub(crate) fn finish(&mut self, metrics: &Metrics) {
        if let Some(mut sink) = self.0.take() {
            sink.on_run_end(metrics);
        }
    }
}

impl fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => f.write_str("TraceSlot(attached)"),
            None => f.write_str("TraceSlot(none)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::process::{Incoming, NodeCtx, OutCtx, Process};
    use crate::reference::ReferenceNetwork;
    use ale_graph::generators;
    use std::sync::{Arc, Mutex};

    #[derive(Debug)]
    struct Pulse(u64);
    impl Process for Pulse {
        type Msg = u64;
        type Output = u64;
        fn round(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            let _ = inbox;
            if self.0 > 0 {
                self.0 -= 1;
                out.broadcast(1);
            }
        }
        fn is_halted(&self) -> bool {
            self.0 == 0
        }
        fn output(&self) -> u64 {
            self.0
        }
    }

    #[derive(Debug, Default)]
    struct Log {
        rounds: Vec<RoundInfo>,
        end: Option<Metrics>,
    }

    struct Recorder(Arc<Mutex<Log>>);
    impl TraceSink for Recorder {
        fn on_round(&mut self, info: &RoundInfo) {
            self.0.lock().unwrap().rounds.push(*info);
        }
        fn on_run_end(&mut self, metrics: &Metrics) {
            self.0.lock().unwrap().end = Some(*metrics);
        }
    }

    #[test]
    fn explicit_sink_sees_every_round_and_the_end() {
        let g = generators::cycle(5).unwrap();
        let log = Arc::new(Mutex::new(Log::default()));
        {
            let mut net = Network::from_fn(&g, 1, 64, |_, _| Pulse(3));
            net.set_trace_sink(Box::new(Recorder(Arc::clone(&log))));
            net.run_to_halt(100).unwrap();
            let metrics = *net.metrics();
            drop(net);
            let log = log.lock().unwrap();
            assert_eq!(log.rounds.len() as u64, metrics.rounds);
            let msgs: u64 = log.rounds.iter().map(|r| r.messages).sum();
            assert_eq!(msgs, metrics.messages);
            assert_eq!(log.rounds[0].active, 5);
            assert_eq!(log.rounds.last().unwrap().active, 0);
            assert_eq!(log.end, Some(metrics));
        }
    }

    #[test]
    fn factory_auto_attaches_on_both_engines() {
        let g = generators::cycle(4).unwrap();
        let log = Arc::new(Mutex::new(Log::default()));
        let handle = Arc::clone(&log);
        install_trace_factory(move || Box::new(Recorder(Arc::clone(&handle))));
        {
            let mut net = Network::from_fn(&g, 1, 64, |_, _| Pulse(2));
            net.run_to_halt(100).unwrap();
        }
        {
            let mut net = ReferenceNetwork::from_fn(&g, 1, 64, |_, _| Pulse(2));
            net.run_to_halt(100).unwrap();
        }
        clear_trace_factory();
        {
            let log = log.lock().unwrap();
            // Both engines ran the same protocol (2 sending rounds each):
            // identical round streams except for the engine-specific
            // buffer high-water mark.
            assert_eq!(log.rounds.len(), 4);
            let (arena, reference) = log.rounds.split_at(2);
            for (a, r) in arena.iter().zip(reference) {
                assert_eq!((a.round, a.messages, a.bits), (r.round, r.messages, r.bits));
                assert_eq!(a.active, r.active);
            }
            assert!(log.end.is_some());
        }
        // Cleared: new networks attach nothing.
        let mut net = Network::from_fn(&g, 1, 64, |_, _| Pulse(1));
        net.run_to_halt(100).unwrap();
        drop(net);
        assert_eq!(log.lock().unwrap().rounds.len(), 4);
    }

    #[test]
    fn failed_rounds_are_not_observed() {
        #[derive(Debug)]
        struct Bad;
        impl Process for Bad {
            type Msg = u64;
            type Output = ();
            fn round(
                &mut self,
                ctx: &mut NodeCtx<'_>,
                _inbox: &[Incoming<u64>],
                out: &mut OutCtx<'_, u64>,
            ) {
                out.send(ctx.degree + 1, 0);
            }
            fn output(&self) {}
        }
        let g = generators::cycle(3).unwrap();
        let log = Arc::new(Mutex::new(Log::default()));
        let mut net = Network::from_fn(&g, 0, 64, |_, _| Bad);
        net.set_trace_sink(Box::new(Recorder(Arc::clone(&log))));
        assert!(net.step().is_err());
        drop(net);
        let log = log.lock().unwrap();
        assert!(log.rounds.is_empty(), "failed round must not be traced");
        assert!(log.end.is_some());
    }
}
