//! Engine-generic test support: one constructor, every engine.
//!
//! The crate ships three execution engines behind the same [`Process`]
//! trait — the arena engine ([`Network`]), the reference engine
//! ([`ReferenceNetwork`]), and the event-driven asynchronous engine
//! ([`AsyncNetwork`], driven here at unit latency with zero faults, the
//! configuration under which it is byte-equivalent to the other two).
//! Tests that construct an engine directly silently pin themselves to one
//! of them; [`AnyNetwork`] lets the same test body loop over
//! [`EngineKind::ALL`] so every compliance or property check covers every
//! engine for free.
//!
//! This is deliberately the *common* surface: the intersection of the
//! three engines' APIs. Engine-specific knobs (fault injection, explicit
//! [`ExecConfig`]s, arena capacity
//! inspection) stay on the concrete types.

use crate::async_net::{AsyncNetwork, ExecConfig};
use crate::error::CongestError;
use crate::metrics::{Metrics, RoundTrace};
use crate::network::{Network, RunStatus};
use crate::process::Process;
use crate::reference::ReferenceNetwork;
use crate::trace::TraceSink;
use ale_graph::Graph;
use rand::rngs::StdRng;

/// Which execution engine to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The zero-allocation arena engine ([`Network`]).
    Arena,
    /// The slow pre-arena oracle ([`ReferenceNetwork`]).
    Reference,
    /// The event-driven engine ([`AsyncNetwork`]) at unit latency with
    /// zero faults — its synchronous-equivalent configuration.
    Async,
}

impl EngineKind {
    /// Every engine, for `for kind in EngineKind::ALL` test loops.
    pub const ALL: [EngineKind; 3] = [EngineKind::Arena, EngineKind::Reference, EngineKind::Async];
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Arena => "arena",
            EngineKind::Reference => "reference",
            EngineKind::Async => "async",
        })
    }
}

/// An engine chosen at runtime. Methods dispatch to the wrapped engine;
/// the surface is the intersection of the three engines' APIs.
#[derive(Debug)]
pub enum AnyNetwork<'g, P: Process> {
    /// A wrapped arena engine.
    Arena(Network<'g, P>),
    /// A wrapped reference engine.
    Reference(ReferenceNetwork<'g, P>),
    /// A wrapped asynchronous engine (unit latency, zero faults).
    Async(AsyncNetwork<'g, P>),
}

macro_rules! dispatch {
    ($self:expr, $net:ident => $body:expr) => {
        match $self {
            AnyNetwork::Arena($net) => $body,
            AnyNetwork::Reference($net) => $body,
            AnyNetwork::Async($net) => $body,
        }
    };
}

impl<'g, P: Process> AnyNetwork<'g, P> {
    /// Wires explicit process instances to the graph's nodes on the
    /// chosen engine — the engine-generic
    /// [`Network::new`](crate::network::Network::new); all engines use
    /// identical node-RNG seeding, so runs are comparable trace for trace.
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] when
    /// `procs.len() != graph.n()`.
    pub fn new(
        kind: EngineKind,
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
    ) -> Result<Self, CongestError> {
        Ok(match kind {
            EngineKind::Arena => AnyNetwork::Arena(Network::new(graph, procs, seed, budget_bits)?),
            EngineKind::Reference => {
                AnyNetwork::Reference(ReferenceNetwork::new(graph, procs, seed, budget_bits)?)
            }
            EngineKind::Async => AnyNetwork::Async(AsyncNetwork::new_with(
                graph,
                procs,
                seed,
                budget_bits,
                ExecConfig::default(),
            )?),
        })
    }

    /// Builds one process per node with the factory `f` on the chosen
    /// engine — the engine-generic
    /// [`Network::from_fn`](crate::network::Network::from_fn).
    pub fn from_fn<F>(
        kind: EngineKind,
        graph: &'g Graph,
        seed: u64,
        budget_bits: usize,
        f: F,
    ) -> Self
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        match kind {
            EngineKind::Arena => AnyNetwork::Arena(Network::from_fn(graph, seed, budget_bits, f)),
            EngineKind::Reference => {
                AnyNetwork::Reference(ReferenceNetwork::from_fn(graph, seed, budget_bits, f))
            }
            EngineKind::Async => {
                AnyNetwork::Async(AsyncNetwork::from_fn(graph, seed, budget_bits, f))
            }
        }
    }

    /// The wrapped engine's kind.
    pub fn kind(&self) -> EngineKind {
        match self {
            AnyNetwork::Arena(_) => EngineKind::Arena,
            AnyNetwork::Reference(_) => EngineKind::Reference,
            AnyNetwork::Async(_) => EngineKind::Async,
        }
    }

    /// Starts recording per-round statistics from the next step on.
    pub fn enable_trace(&mut self) {
        dispatch!(self, net => net.enable_trace())
    }

    /// The recorded per-round trace.
    pub fn trace(&self) -> &[RoundTrace] {
        dispatch!(self, net => net.trace())
    }

    /// Attaches a streaming per-round observer.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        dispatch!(self, net => net.set_trace_sink(sink))
    }

    /// Executes one round (one virtual tick on the async engine).
    ///
    /// # Errors
    ///
    /// Propagates the wrapped engine's [`CongestError`]s.
    pub fn step(&mut self) -> Result<(), CongestError> {
        dispatch!(self, net => net.step())
    }

    /// Runs until every process halts, up to `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped engine's [`CongestError`]s.
    pub fn run_to_halt(&mut self, max_rounds: u64) -> Result<RunStatus, CongestError> {
        dispatch!(self, net => net.run_to_halt(max_rounds))
    }

    /// Runs exactly `rounds` rounds (or stops early if all halt).
    ///
    /// # Errors
    ///
    /// Propagates the wrapped engine's [`CongestError`]s.
    pub fn run_for(&mut self, rounds: u64) -> Result<RunStatus, CongestError> {
        dispatch!(self, net => net.run_for(rounds))
    }

    /// True when every process reports halted.
    pub fn all_halted(&self) -> bool {
        dispatch!(self, net => net.all_halted())
    }

    /// Current round number (virtual tick on the async engine).
    pub fn round(&self) -> u64 {
        dispatch!(self, net => net.round())
    }

    /// Outputs of all processes, indexed by host-side node id.
    pub fn outputs(&self) -> Vec<P::Output> {
        dispatch!(self, net => net.outputs())
    }

    /// Borrows all processes.
    pub fn processes(&self) -> &[P] {
        dispatch!(self, net => net.processes())
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        dispatch!(self, net => net.metrics())
    }

    /// A point-in-time copy of the metrics.
    pub fn metrics_snapshot(&self) -> Metrics {
        dispatch!(self, net => net.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Incoming, NodeCtx, OutCtx};
    use ale_graph::generators;

    /// Broadcasts its degree once, sums everything heard, halts.
    #[derive(Debug)]
    struct Shout {
        heard: u64,
        done: bool,
    }
    impl Process for Shout {
        type Msg = u64;
        type Output = u64;
        fn round(
            &mut self,
            ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            self.heard += inbox.iter().map(|m| m.msg).sum::<u64>();
            if ctx.round == 0 {
                out.broadcast(ctx.degree as u64);
            } else {
                self.done = true;
            }
        }
        fn is_halted(&self) -> bool {
            self.done
        }
        fn output(&self) -> u64 {
            self.heard
        }
    }

    #[test]
    fn every_engine_produces_the_same_run() {
        let g = generators::cycle(5).unwrap();
        let mut runs = Vec::new();
        for kind in EngineKind::ALL {
            let mut net = AnyNetwork::from_fn(kind, &g, 9, 64, |_, _| Shout {
                heard: 0,
                done: false,
            });
            net.enable_trace();
            assert_eq!(net.kind(), kind);
            let status = net.run_to_halt(10).unwrap();
            assert_eq!(status, RunStatus::AllHalted, "{kind}");
            assert!(net.outputs().iter().all(|&h| h == 4), "{kind}");
            runs.push((net.metrics_snapshot(), net.trace().to_vec()));
        }
        assert_eq!(runs[0], runs[1], "arena vs reference");
        assert_eq!(runs[0], runs[2], "arena vs async");
    }

    #[test]
    fn new_rejects_count_mismatch_on_every_engine() {
        let g = generators::complete(4).unwrap();
        for kind in EngineKind::ALL {
            let procs = (0..2)
                .map(|_| Shout {
                    heard: 0,
                    done: false,
                })
                .collect();
            assert!(
                matches!(
                    AnyNetwork::new(kind, &g, procs, 0, 8),
                    Err(CongestError::ProcessCountMismatch { .. })
                ),
                "{kind}"
            );
        }
    }
}
