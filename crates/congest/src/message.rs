//! Message payloads and CONGEST bit accounting.
//!
//! The CONGEST model (Peleg \[28\]; paper Section 2) allows each node to send
//! `O(log n)` bits per link per round. The simulator does not serialize
//! messages — it *meters* them: every payload reports its wire size through
//! [`Payload::bit_size`], and the metrics layer compares that against the
//! per-link budget, recording violations and charging extra serialized
//! rounds where the paper does (the revocable protocol's potentials,
//! Section 5.2: "transmissions of potentials are done one bit at a time").

/// A message payload with a defined wire size.
///
/// Implementations should report the number of bits an honest binary
/// encoding of the value would occupy — this is what the message/bit
/// complexity counters aggregate and what the CONGEST budget is enforced
/// against.
pub trait Payload: Clone + std::fmt::Debug {
    /// Serialized size in bits.
    fn bit_size(&self) -> usize;
}

/// Bits needed to store `v` in plain binary (`0 → 1` bit).
///
/// # Examples
///
/// ```
/// use ale_congest::message::bits_for_u128;
/// assert_eq!(bits_for_u128(0), 1);
/// assert_eq!(bits_for_u128(1), 1);
/// assert_eq!(bits_for_u128(255), 8);
/// assert_eq!(bits_for_u128(256), 9);
/// ```
pub fn bits_for_u128(v: u128) -> usize {
    (128 - v.leading_zeros()).max(1) as usize
}

/// Bits needed to store `v` in plain binary (`0 → 1` bit).
pub fn bits_for_u64(v: u64) -> usize {
    bits_for_u128(v as u128)
}

/// Bits needed to store `v` in plain binary (`0 → 1` bit).
pub fn bits_for_usize(v: usize) -> usize {
    bits_for_u128(v as u128)
}

/// The per-link-per-round CONGEST budget for an `n`-node network:
/// `factor · ⌈log₂ n⌉` bits (`n = 1` treated as 1 bit base).
///
/// # Examples
///
/// ```
/// use ale_congest::message::congest_budget;
/// assert_eq!(congest_budget(1024, 4), 40);
/// ```
pub fn congest_budget(n: usize, factor: usize) -> usize {
    let log = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    };
    factor * log.max(1)
}

/// Blanket payload for unit messages (pure synchronization pulses).
impl Payload for () {
    fn bit_size(&self) -> usize {
        1
    }
}

impl Payload for u64 {
    fn bit_size(&self) -> usize {
        bits_for_u64(*self)
    }
}

impl Payload for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl<T: Payload> Payload for Option<T> {
    fn bit_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::bit_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for_u64(0), 1);
        assert_eq!(bits_for_u64(1), 1);
        assert_eq!(bits_for_u64(2), 2);
        assert_eq!(bits_for_u64(u64::MAX), 64);
        assert_eq!(bits_for_usize(1023), 10);
        assert_eq!(bits_for_u128(u128::MAX), 128);
    }

    #[test]
    fn budget_scales_logarithmically() {
        assert_eq!(congest_budget(2, 1), 1);
        assert_eq!(congest_budget(1024, 1), 10);
        assert_eq!(congest_budget(1025, 1), 11);
        assert_eq!(congest_budget(1, 3), 3);
    }

    #[test]
    fn payload_impls() {
        assert_eq!(().bit_size(), 1);
        assert_eq!(7u64.bit_size(), 3);
        assert_eq!(true.bit_size(), 1);
        assert_eq!(Some(7u64).bit_size(), 4);
        assert_eq!(None::<u64>.bit_size(), 1);
    }
}
