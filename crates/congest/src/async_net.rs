//! The event-driven asynchronous engine with an adversary model.
//!
//! [`AsyncNetwork`] is the second execution engine behind the same
//! [`Process`] trait: instead of the arena engine's lockstep rounds, it
//! keeps a deterministic priority queue of **message-delivery events** on
//! a virtual-time axis. Nodes stay tick-synchronous — every active node
//! executes once per virtual tick — but *links* are asynchronous: a
//! message sent at tick `t` arrives at the start of tick `t + L`, where
//! `L ≥ 1` is drawn per message from the declared [`LatencyDist`]. An
//! adversary ([`FaultSpec`]) may additionally crash nodes at a scheduled
//! tick, drop messages at send time, or inject duplicate copies.
//!
//! ## Event-queue invariants
//!
//! * Events are ordered by `(time, seq)` where `seq` is a global send
//!   counter — for any fixed arrival tick, delivery order equals global
//!   send order (sender id ascending, then send order within the sender).
//!   At **unit latency with zero faults** this reproduces the synchronous
//!   engines' inbox order exactly, which is what makes the arena engine
//!   ([`Network`](crate::network::Network)) the equivalence oracle for
//!   this one: outputs, [`Metrics`], and traces are byte-identical
//!   (pinned by `crates/congest/tests/async_equivalence.rs`).
//! * Virtual time only moves forward: a tick pops exactly the events
//!   scheduled for `now`, runs every active node, pushes the newly staged
//!   events (all strictly in the future), and advances.
//! * **Fault atomicity**: a message's fate — dropped, delivered once, or
//!   duplicated — is decided entirely at send time from the adversary's
//!   own SplitMix64 streams. By construction the counters always
//!   reconcile: `delivered == messages − dropped + duplicated`.
//! * **Failed ticks deliver nothing**: an invalid port drops the whole
//!   tick exactly like the synchronous engines drop a round — nothing is
//!   staged or metered, virtual time does not advance, and the tick's
//!   input messages are retained for inspection/retry; multi-send
//!   violations recorded before the failure stick.
//!
//! ## Determinism
//!
//! All adversary randomness derives from the construction seed through
//! fixed-constant SplitMix64 streams (one for message fate, one for
//! latency, one positional per-node draw for crash schedules), so a run
//! is a pure function of `(graph, seed, config)` — independent of worker
//! count, wall clock, and host. The node RNGs are the same
//! `node_rngs` streams every engine uses.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::CongestError;
use crate::message::Payload;
use crate::metrics::{Metrics, RoundInfo, RoundTrace};
use crate::network::{node_rngs, splitmix64, RunStatus};
use crate::process::{Incoming, NodeCtx, OutCtx, Process, RoundStats};
use crate::trace::{TraceSink, TraceSlot};
use ale_graph::{Graph, NodeId};
use rand::rngs::StdRng;

/// Stream-domain constants: each adversary stream hashes the construction
/// seed with its own constant so the streams are mutually independent and
/// disjoint from the node-RNG derivation (`seed ^ splitmix64(v + 1)`).
const FATE_STREAM: u64 = 0xFA7E_5EED_0000_0001;
const LATENCY_STREAM: u64 = 0x1A7E_5EED_0000_0002;
const CRASH_STREAM: u64 = 0xC4A5_8EED_0000_0003;

/// Per-edge message latency, in virtual ticks. Every distribution has
/// support on `L ≥ 1`: a message sent at tick `t` is never visible before
/// tick `t + 1` (the synchronous lower bound).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LatencyDist {
    /// Every message takes exactly one tick — the synchronous schedule.
    /// Consumes no randomness, so a unit-latency run leaves the latency
    /// stream untouched.
    #[default]
    Unit,
    /// Uniform over `{min, …, max}` ticks (inclusive; `1 ≤ min ≤ max`).
    Uniform {
        /// Smallest latency, ≥ 1.
        min: u64,
        /// Largest latency, ≥ `min`.
        max: u64,
    },
    /// `1 +` a geometric number of failures with success probability `p`
    /// (`0 < p ≤ 1`), capped at 64 ticks — a long-tailed link.
    Geometric {
        /// Per-tick arrival probability.
        p: f64,
    },
}

/// The adversary: per-message drop/duplication probabilities and a
/// per-node crash schedule. `FaultSpec::default()` is the fault-free
/// adversary (all probabilities zero).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability a sent message is discarded (never delivered).
    pub drop: f64,
    /// Probability a delivered message gets one extra copy (with its own
    /// independently drawn latency).
    pub duplicate: f64,
    /// Probability a node is scheduled to crash at all.
    pub crash: f64,
    /// Crash ticks are uniform in `[0, crash_window)`; must be ≥ 1 when
    /// `crash > 0`. A crashed node stops executing at the start of its
    /// crash tick and never returns; messages addressed to it still count
    /// as delivered (they arrive at a dead mailbox).
    pub crash_window: u64,
}

impl FaultSpec {
    /// True when no fault can ever fire — the configuration under which
    /// [`AsyncNetwork`] is byte-equivalent to the synchronous engines
    /// (given unit latency).
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.crash == 0.0
    }
}

/// Execution configuration for [`AsyncNetwork`]: the link-latency
/// distribution and the adversary. The default — unit latency, zero
/// faults — makes the engine observationally identical to
/// [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecConfig {
    /// Per-message link latency.
    pub latency: LatencyDist,
    /// The fault adversary.
    pub faults: FaultSpec,
}

impl ExecConfig {
    /// Validates probabilities and distribution parameters.
    ///
    /// # Errors
    ///
    /// [`CongestError::BadExecConfig`] naming the violated constraint:
    /// probabilities outside `[0, 1]` (or non-finite), a uniform latency
    /// range with `min < 1` or `max < min`, a geometric `p` outside
    /// `(0, 1]`, or a crash probability without a positive window.
    pub fn validate(&self) -> Result<(), CongestError> {
        let bad = |reason: String| Err(CongestError::BadExecConfig { reason });
        for (name, p) in [
            ("drop", self.faults.drop),
            ("duplicate", self.faults.duplicate),
            ("crash", self.faults.crash),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return bad(format!("{name} probability {p} outside [0, 1]"));
            }
        }
        match self.latency {
            LatencyDist::Unit => {}
            LatencyDist::Uniform { min, max } => {
                if min < 1 {
                    return bad(format!("uniform latency min {min} < 1"));
                }
                if max < min {
                    return bad(format!("uniform latency max {max} < min {min}"));
                }
            }
            LatencyDist::Geometric { p } => {
                if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                    return bad(format!("geometric latency p {p} outside (0, 1]"));
                }
            }
        }
        if self.faults.crash > 0.0 && self.faults.crash_window == 0 {
            return bad("crash probability set but crash_window is 0".to_string());
        }
        Ok(())
    }
}

/// A SplitMix64 output stream — the adversary's deterministic randomness,
/// kept separate from the node RNGs so protocols cannot observe (or
/// perturb) adversary decisions.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }

    /// A uniform draw in `[0, 1)` from the top 53 bits.
    fn next_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// True with probability `p`. Callers gate on `p > 0` so a zero-fault
    /// run consumes nothing from the stream.
    fn chance(&mut self, p: f64) -> bool {
        self.next_unit() < p
    }
}

fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One scheduled delivery. Ordering compares `(time, seq)` only — the
/// payload does not participate, so `Msg` needs no `Ord`.
#[derive(Debug)]
struct Event<M> {
    time: u64,
    seq: u64,
    target: u32,
    port: u32,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Tick sentinel for "never crashes".
const NEVER: u64 = u64::MAX;

/// The event-driven asynchronous engine (see the [module docs](self) for
/// the event-queue invariants and the determinism contract).
///
/// API surface mirrors [`Network`](crate::network::Network); `round()`
/// reports the current virtual tick.
#[derive(Debug)]
pub struct AsyncNetwork<'g, P: Process> {
    graph: &'g Graph,
    procs: Vec<P>,
    rngs: Vec<StdRng>,
    config: ExecConfig,
    /// Current virtual tick.
    now: u64,
    metrics: Metrics,
    /// The delivery queue: min-heap on `(time, seq)`.
    heap: BinaryHeap<Reverse<Event<P::Msg>>>,
    /// Global send counter — the event tiebreak within one arrival tick.
    seq: u64,
    /// Per-node arrival buffers for the current tick.
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    /// Nodes whose inbox is non-empty this tick (cleared after a
    /// successful tick; a failed tick leaves them for the retry).
    filled: Vec<u32>,
    /// True when `inboxes` already hold tick `now`'s arrivals — set by a
    /// failed tick so the retry reruns with the same inputs instead of
    /// re-popping the heap.
    inboxes_ready: bool,
    /// Reusable per-node send collection buffer.
    outbox: Vec<(usize, P::Msg)>,
    /// Events staged during the current tick, promoted to the heap only
    /// if the tick commits (failed ticks stage nothing).
    staging: Vec<Event<P::Msg>>,
    /// Epoch-stamped port-use marks for multi-send detection (arena
    /// style: sized to the max degree, never cleared).
    port_marks: Vec<u64>,
    mark: u64,
    /// Non-halted, non-crashed node ids, ascending.
    active: Vec<u32>,
    /// Scheduled crash tick per node ([`NEVER`] = none).
    crash_at: Vec<u64>,
    /// Adversary streams: message fate (drop/duplicate) and latency.
    fate: SplitMix,
    latency: SplitMix,
    trace: Option<Vec<RoundTrace>>,
    sink: TraceSlot,
}

impl<'g, P: Process> AsyncNetwork<'g, P> {
    fn build(
        graph: &'g Graph,
        procs: Vec<P>,
        rngs: Vec<StdRng>,
        budget_bits: usize,
        seed: u64,
        config: ExecConfig,
    ) -> Result<Self, CongestError> {
        config.validate()?;
        let n = graph.n();
        assert!(n <= u32::MAX as usize, "node ids must fit in u32");
        // Positional per-node crash draws: independent of iteration order
        // and of every other stream, so the schedule is a pure function of
        // (seed, node id, config).
        let crash_seed = splitmix64(seed ^ splitmix64(CRASH_STREAM));
        let crash_at: Vec<u64> = (0..n)
            .map(|v| {
                if config.faults.crash == 0.0 {
                    return NEVER;
                }
                let h = splitmix64(crash_seed ^ splitmix64(v as u64 + 1));
                if unit_f64(h) < config.faults.crash {
                    splitmix64(h) % config.faults.crash_window.max(1)
                } else {
                    NEVER
                }
            })
            .collect();
        let active = (0..n)
            .filter(|&v| !procs[v].is_halted())
            .map(|v| v as u32)
            .collect();
        let max_degree = (0..n).map(|v| graph.degree(v)).max().unwrap_or(0);
        Ok(AsyncNetwork {
            graph,
            procs,
            rngs,
            config,
            now: 0,
            metrics: Metrics::new(budget_bits),
            heap: BinaryHeap::new(),
            seq: 0,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            filled: Vec::new(),
            inboxes_ready: false,
            outbox: Vec::new(),
            staging: Vec::new(),
            port_marks: vec![0; max_degree],
            mark: 0,
            active,
            crash_at,
            fate: SplitMix::new(splitmix64(seed ^ splitmix64(FATE_STREAM))),
            latency: SplitMix::new(splitmix64(seed ^ splitmix64(LATENCY_STREAM))),
            trace: None,
            sink: TraceSlot::attach(),
        })
    }

    /// Wires explicit process instances to the graph's nodes with the
    /// default (unit latency, fault-free) configuration — the async twin
    /// of [`Network::new`](crate::network::Network::new), identical
    /// seeding.
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] when
    /// `procs.len() != graph.n()`.
    pub fn new(
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
    ) -> Result<Self, CongestError> {
        Self::new_with(graph, procs, seed, budget_bits, ExecConfig::default())
    }

    /// [`AsyncNetwork::new`] with an explicit execution configuration.
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] on a process-count mismatch,
    /// [`CongestError::BadExecConfig`] when the configuration fails
    /// validation.
    pub fn new_with(
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
        config: ExecConfig,
    ) -> Result<Self, CongestError> {
        if procs.len() != graph.n() {
            return Err(CongestError::ProcessCountMismatch {
                nodes: graph.n(),
                processes: procs.len(),
            });
        }
        let rngs = node_rngs(graph.n(), seed);
        Self::build(graph, procs, rngs, budget_bits, seed, config)
    }

    /// Builds one process per node with the factory `f` under the default
    /// configuration — the async twin of
    /// [`Network::from_fn`](crate::network::Network::from_fn).
    pub fn from_fn<F>(graph: &'g Graph, seed: u64, budget_bits: usize, f: F) -> Self
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        Self::from_fn_with(graph, seed, budget_bits, ExecConfig::default(), f)
            .expect("default ExecConfig always validates")
    }

    /// [`AsyncNetwork::from_fn`] with an explicit execution configuration.
    ///
    /// # Errors
    ///
    /// [`CongestError::BadExecConfig`] when the configuration fails
    /// validation.
    pub fn from_fn_with<F>(
        graph: &'g Graph,
        seed: u64,
        budget_bits: usize,
        config: ExecConfig,
        mut f: F,
    ) -> Result<Self, CongestError>
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        let n = graph.n();
        let mut rngs = node_rngs(n, seed);
        let procs = (0..n).map(|v| f(graph.degree(v), &mut rngs[v])).collect();
        Self::build(graph, procs, rngs, budget_bits, seed, config)
    }

    /// Starts recording per-round statistics from the next tick on.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded per-tick trace (empty unless
    /// [`AsyncNetwork::enable_trace`] was called).
    pub fn trace(&self) -> &[RoundTrace] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a streaming per-tick observer (the async twin of
    /// [`Network::set_trace_sink`](crate::network::Network::set_trace_sink)).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.replace(sink, &self.metrics);
    }

    /// Draws one message latency; `Unit` consumes no randomness.
    fn draw_latency(latency: &mut SplitMix, dist: LatencyDist) -> u64 {
        match dist {
            LatencyDist::Unit => 1,
            LatencyDist::Uniform { min, max } => min + latency.next_u64() % (max - min + 1),
            LatencyDist::Geometric { p } => {
                let mut l = 1;
                while l < 64 && latency.next_unit() >= p {
                    l += 1;
                }
                l
            }
        }
    }

    /// Executes one virtual tick: deliver the events scheduled for `now`,
    /// run every active node, decide each send's fate, and advance time.
    ///
    /// # Errors
    ///
    /// [`CongestError::InvalidPort`] on a protocol bug; the failed tick is
    /// dropped wholesale — nothing staged or metered, virtual time frozen,
    /// this tick's arrivals retained — exactly matching the synchronous
    /// engines' failed-round semantics.
    pub fn step(&mut self) -> Result<(), CongestError> {
        debug_assert!(self.staging.is_empty());
        // Deliver: pop this tick's events into the per-node buffers. A
        // retry after a failed tick skips this — the buffers already hold
        // tick `now`'s arrivals.
        if !self.inboxes_ready {
            for &v in &self.filled {
                self.inboxes[v as usize].clear();
            }
            self.filled.clear();
            while let Some(Reverse(ev)) = self.heap.peek() {
                debug_assert!(ev.time >= self.now, "event from the past");
                if ev.time > self.now {
                    break;
                }
                let Reverse(ev) = self.heap.pop().expect("peeked");
                let inbox = &mut self.inboxes[ev.target as usize];
                if inbox.is_empty() {
                    self.filled.push(ev.target);
                }
                inbox.push(Incoming {
                    port: ev.port as usize,
                    msg: ev.msg,
                });
            }
            self.inboxes_ready = true;
        }
        // Crashes scheduled for this tick fire before anyone computes.
        if self.config.faults.crash > 0.0 {
            let crash_at = &self.crash_at;
            let now = self.now;
            self.active.retain(|&v| crash_at[v as usize] > now);
        }

        let mut stats = RoundStats::default();
        let mut failure: Option<CongestError> = None;
        let mut any_halted = false;
        let drop_p = self.config.faults.drop;
        let dup_p = self.config.faults.duplicate;

        'nodes: for &v in &self.active {
            let v = v as usize;
            let degree = self.graph.degree(v);
            let mut ctx = NodeCtx {
                degree,
                round: self.now,
                rng: &mut self.rngs[v],
            };
            self.outbox.clear();
            let mut out = OutCtx::collector(degree, &mut self.outbox);
            self.procs[v].round(&mut ctx, &self.inboxes[v], &mut out);
            if self.procs[v].is_halted() {
                any_halted = true;
            }
            self.mark += 1;
            for (port, msg) in self.outbox.drain(..) {
                if port >= degree {
                    failure = Some(CongestError::InvalidPort {
                        node: v,
                        port,
                        degree,
                    });
                    break 'nodes;
                }
                if self.port_marks[port] == self.mark {
                    self.metrics.record_multi_send();
                } else {
                    self.port_marks[port] = self.mark;
                }
                let bits = msg.bit_size();
                stats.messages += 1;
                stats.bits += bits as u64;
                if bits > stats.max_bits {
                    stats.max_bits = bits;
                }
                let budget = self.metrics.budget_bits;
                if budget > 0 && bits > budget {
                    stats.oversize += 1;
                }
                // Fate: decided wholly at send time. A dropped message
                // consumes exactly one fate draw and nothing else.
                if drop_p > 0.0 && self.fate.chance(drop_p) {
                    stats.dropped += 1;
                    continue;
                }
                let (target, arrival) = self.graph.port_and_reverse(v, port);
                let duplicate = dup_p > 0.0 && self.fate.chance(dup_p);
                if duplicate {
                    stats.duplicated += 1;
                    let l = Self::draw_latency(&mut self.latency, self.config.latency);
                    self.staging.push(Event {
                        time: self.now + l,
                        seq: self.seq,
                        target: target as u32,
                        port: arrival as u32,
                        msg: msg.clone(),
                    });
                    self.seq += 1;
                }
                let l = Self::draw_latency(&mut self.latency, self.config.latency);
                self.staging.push(Event {
                    time: self.now + l,
                    seq: self.seq,
                    target: target as u32,
                    port: arrival as u32,
                    msg,
                });
                self.seq += 1;
            }
        }

        if let Some(e) = failure {
            // Drop the partial tick: nothing staged, nothing metered,
            // virtual time frozen, this tick's arrivals kept for the
            // retry; multi-send violations recorded before the failure
            // stick — matching the synchronous engines.
            self.staging.clear();
            self.outbox.clear();
            let procs = &self.procs;
            self.active.retain(|&v| !procs[v as usize].is_halted());
            return Err(e);
        }

        if any_halted {
            let procs = &self.procs;
            self.active.retain(|&v| !procs[v as usize].is_halted());
        }

        for ev in self.staging.drain(..) {
            self.heap.push(Reverse(ev));
        }

        self.metrics.record_round(&stats);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(RoundTrace {
                round: self.now,
                messages: stats.messages,
                bits: stats.bits,
                max_bits: stats.max_bits,
            });
        }
        self.sink.on_round(&RoundInfo {
            round: self.now,
            messages: stats.messages,
            bits: stats.bits,
            max_bits: stats.max_bits,
            active: self.active.len(),
            buffer_cap: self.heap.capacity(),
        });
        self.inboxes_ready = false;
        self.now += 1;
        Ok(())
    }

    /// Runs until every process halts (or crashes), up to `max_rounds`
    /// ticks.
    ///
    /// # Errors
    ///
    /// Propagates [`AsyncNetwork::step`] errors.
    pub fn run_to_halt(&mut self, max_rounds: u64) -> Result<RunStatus, CongestError> {
        self.run_until(max_rounds, |_| false)
    }

    /// Runs exactly `rounds` ticks (or stops early if all halt).
    ///
    /// # Errors
    ///
    /// Propagates [`AsyncNetwork::step`] errors.
    pub fn run_for(&mut self, rounds: u64) -> Result<RunStatus, CongestError> {
        let target = self.now + rounds;
        while self.now < target {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            self.step()?;
        }
        Ok(RunStatus::RoundLimit)
    }

    /// Runs until all processes halt, `pred` becomes true (checked after
    /// every tick), or `max_rounds` ticks elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`AsyncNetwork::step`] errors.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut pred: F) -> Result<RunStatus, CongestError>
    where
        F: FnMut(&Self) -> bool,
    {
        let start = self.now;
        loop {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            if self.now - start >= max_rounds {
                return Ok(RunStatus::RoundLimit);
            }
            self.step()?;
            if pred(self) {
                return Ok(RunStatus::PredicateMet);
            }
        }
    }

    /// True when no process can act again — every node halted or crashed.
    /// O(1), like the arena engine's active set.
    pub fn all_halted(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of nodes still executing (neither halted nor crashed).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Current virtual tick (ticks executed so far) — the async engine's
    /// round counter.
    pub fn round(&self) -> u64 {
        self.now
    }

    /// Messages currently in flight (scheduled but not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Outputs of all processes, indexed by host-side node id.
    pub fn outputs(&self) -> Vec<P::Output> {
        self.procs.iter().map(Process::output).collect()
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of the metrics (see [`Metrics::snapshot`]).
    pub fn metrics_snapshot(&self) -> Metrics {
        self.metrics.snapshot()
    }

    /// Borrows a single process for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn process(&self, v: NodeId) -> &P {
        &self.procs[v]
    }

    /// Borrows all processes.
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

impl<P: Process> Drop for AsyncNetwork<'_, P> {
    fn drop(&mut self) {
        self.sink.finish(&self.metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    /// Broadcasts a counter for `left` ticks, summing everything heard.
    #[derive(Debug)]
    struct Pulse {
        left: u64,
        heard: u64,
    }
    impl Process for Pulse {
        type Msg = u64;
        type Output = u64;
        fn round(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            self.heard += inbox.iter().map(|m| m.msg).sum::<u64>();
            if self.left > 0 {
                self.left -= 1;
                out.broadcast(1);
            }
        }
        fn is_halted(&self) -> bool {
            self.left == 0
        }
        fn output(&self) -> u64 {
            self.heard
        }
    }

    fn pulse_net(graph: &Graph, config: ExecConfig, seed: u64) -> AsyncNetwork<'_, Pulse> {
        AsyncNetwork::from_fn_with(graph, seed, 64, config, |_, _| Pulse { left: 3, heard: 0 })
            .expect("valid config")
    }

    #[test]
    fn unit_latency_fault_free_runs_like_a_synchronous_engine() {
        let g = generators::cycle(6).unwrap();
        let mut net = pulse_net(&g, ExecConfig::default(), 7);
        net.enable_trace();
        let status = net.run_to_halt(10).unwrap();
        assert_eq!(status, RunStatus::AllHalted);
        let m = net.metrics();
        assert_eq!(m.messages, 6 * 3 * 2);
        assert_eq!(m.delivered, m.messages);
        assert_eq!((m.dropped, m.duplicated), (0, 0));
        assert_eq!(net.trace().len() as u64, m.rounds);
        // Everyone halts after tick 2, so the tick-2 sends land at a dead
        // mailbox: each node hears its two neighbors for ticks 1 and 2 —
        // exactly the synchronous engines' halting semantics.
        assert!(net.outputs().iter().all(|&h| h == 4));
    }

    #[test]
    fn latency_delays_but_does_not_lose_messages() {
        let g = generators::cycle(6).unwrap();
        let cfg = ExecConfig {
            latency: LatencyDist::Uniform { min: 1, max: 5 },
            ..ExecConfig::default()
        };
        let mut unit = pulse_net(&g, ExecConfig::default(), 7);
        let mut slow = pulse_net(&g, cfg, 7);
        unit.run_for(40).unwrap();
        slow.run_for(40).unwrap();
        // Same sends, same enqueue-time accounting; only the delivery
        // schedule differs — and late arrivals can land after their
        // reader halted, so a node may *hear* less, never more.
        assert_eq!(unit.metrics().messages, slow.metrics().messages);
        assert_eq!(slow.metrics().delivered, slow.metrics().messages);
        for (u, s) in unit.outputs().into_iter().zip(slow.outputs()) {
            assert!(s <= u, "latency cannot create messages");
        }
    }

    #[test]
    fn drops_and_duplicates_reconcile() {
        let g = generators::complete(8).unwrap();
        let cfg = ExecConfig {
            faults: FaultSpec {
                drop: 0.3,
                duplicate: 0.2,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        };
        let mut net = pulse_net(&g, cfg, 11);
        net.run_for(10).unwrap();
        let m = net.metrics();
        assert!(m.dropped > 0, "0.3 over {} sends must fire", m.messages);
        assert!(m.duplicated > 0);
        assert_eq!(m.delivered, m.messages - m.dropped + m.duplicated);
        assert!(m.congest_clean(), "faults are not protocol violations");
    }

    #[test]
    fn crashed_nodes_stop_executing() {
        let g = generators::complete(16).unwrap();
        let cfg = ExecConfig {
            faults: FaultSpec {
                crash: 0.5,
                crash_window: 2,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        };
        let mut net = pulse_net(&g, cfg, 3);
        net.step().unwrap();
        let after_first = net.active_count();
        assert!(after_first < 16, "seed 3 schedules at least one crash");
        net.run_for(5).unwrap();
        // Crash window is [0, 2): no crashes after tick 1, and survivors
        // halt on their own schedule.
        assert_eq!(net.all_halted(), net.active_count() == 0);
    }

    #[test]
    fn identical_seeds_reproduce_fault_schedules_exactly() {
        let g = generators::complete(8).unwrap();
        let cfg = ExecConfig {
            latency: LatencyDist::Geometric { p: 0.5 },
            faults: FaultSpec {
                drop: 0.2,
                duplicate: 0.1,
                crash: 0.2,
                crash_window: 4,
            },
        };
        let run = |seed: u64| {
            let mut net = pulse_net(&g, cfg, seed);
            net.enable_trace();
            net.run_for(20).unwrap();
            (net.outputs(), net.metrics_snapshot(), net.trace().to_vec())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds must diverge");
    }

    #[test]
    fn invalid_config_is_rejected_loudly() {
        let cases = [
            ExecConfig {
                faults: FaultSpec {
                    drop: 1.5,
                    ..FaultSpec::default()
                },
                ..ExecConfig::default()
            },
            ExecConfig {
                faults: FaultSpec {
                    duplicate: -0.1,
                    ..FaultSpec::default()
                },
                ..ExecConfig::default()
            },
            ExecConfig {
                latency: LatencyDist::Uniform { min: 0, max: 3 },
                ..ExecConfig::default()
            },
            ExecConfig {
                latency: LatencyDist::Uniform { min: 5, max: 2 },
                ..ExecConfig::default()
            },
            ExecConfig {
                latency: LatencyDist::Geometric { p: 0.0 },
                ..ExecConfig::default()
            },
            ExecConfig {
                faults: FaultSpec {
                    crash: 0.5,
                    crash_window: 0,
                    ..FaultSpec::default()
                },
                ..ExecConfig::default()
            },
        ];
        for cfg in cases {
            assert!(
                matches!(cfg.validate(), Err(CongestError::BadExecConfig { .. })),
                "{cfg:?} must be rejected"
            );
        }
        assert!(ExecConfig::default().validate().is_ok());
    }

    #[test]
    fn process_count_mismatch_is_detected() {
        let g = generators::complete(4).unwrap();
        let procs = (0..3).map(|_| Pulse { left: 1, heard: 0 }).collect();
        assert!(matches!(
            AsyncNetwork::new(&g, procs, 0, 8),
            Err(CongestError::ProcessCountMismatch { .. })
        ));
    }
}
