//! Round, message, and bit accounting.
//!
//! Two clocks are kept (see DESIGN.md, "Substitutions"):
//!
//! * `rounds` — simulator steps, one per synchronous protocol round;
//! * `congest_rounds` — CONGEST-model rounds *charged*, which exceed
//!   `rounds` when a step carried a message wider than the per-link budget
//!   and the protocol (per the paper) serializes it bit by bit. A step's
//!   charge is `max over messages of ⌈bits/budget⌉` because links serialize
//!   in parallel.
//!
//! Message counts are point-to-point messages; bit counts are the sum of
//! payload wire sizes — the two units Theorems 1 and 3 bound.

/// Per-round counters, recorded when tracing is enabled
/// ([`Network::enable_trace`](crate::network::Network::enable_trace)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTrace {
    /// Round number (0-based).
    pub round: u64,
    /// Messages delivered out of this round.
    pub messages: u64,
    /// Payload bits delivered out of this round.
    pub bits: u64,
    /// Widest payload this round, in bits.
    pub max_bits: usize,
}

/// A per-round observation handed to a live
/// [`TraceSink`](crate::trace::TraceSink) — what [`RoundTrace`] records,
/// plus the engine-health signals a telemetry layer wants (active-set
/// size and the delivery-buffer high-water mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundInfo {
    /// Round number (0-based).
    pub round: u64,
    /// Messages delivered out of this round.
    pub messages: u64,
    /// Payload bits delivered out of this round.
    pub bits: u64,
    /// Widest payload this round, in bits.
    pub max_bits: usize,
    /// Non-halted processes *after* this round (nodes that halted during
    /// the round are already excluded).
    pub active: usize,
    /// High-water mark (capacity) of the engine's delivery buffer, in
    /// messages — engine-specific: the arena engine reports its flat inbox
    /// arena, the reference engine its per-node send buffer.
    pub buffer_cap: usize,
}

/// Aggregated counters for one network run.
///
/// All fields are plain counters, so the type is `Copy`: harnesses can
/// take cheap point-in-time snapshots mid-run (see [`Metrics::snapshot`])
/// without borrowing the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Simulator steps executed.
    pub rounds: u64,
    /// CONGEST rounds charged (≥ `rounds`; see module docs).
    pub congest_rounds: u64,
    /// Point-to-point messages delivered.
    pub messages: u64,
    /// Total payload bits delivered.
    pub bits: u64,
    /// Per-link-per-round CONGEST budget in bits.
    pub budget_bits: usize,
    /// Messages whose payload exceeded the budget (each charged as multiple
    /// serialized CONGEST rounds).
    pub oversize_messages: u64,
    /// Largest single payload observed, in bits.
    pub max_message_bits: usize,
    /// Rounds in which some node sent more than one message through the
    /// same port — a protocol bug under CONGEST; counted, not merged.
    pub multi_send_violations: u64,
    /// Messages actually enqueued for delivery. On the fault-free
    /// synchronous engines this always equals `messages`; under the
    /// asynchronous adversary it is `messages - dropped + duplicated`.
    pub delivered: u64,
    /// Messages the adversary discarded at send time (never delivered).
    pub dropped: u64,
    /// Extra copies the adversary injected (each delivered separately).
    pub duplicated: u64,
}

impl Metrics {
    /// Creates zeroed metrics with the given CONGEST budget.
    pub fn new(budget_bits: usize) -> Self {
        Metrics {
            budget_bits,
            ..Metrics::default()
        }
    }

    /// Records one simulator step in which the widest message had
    /// `max_bits` bits. Charges serialized CONGEST rounds accordingly.
    pub(crate) fn record_step(&mut self, max_bits: usize) {
        self.rounds += 1;
        let charge = if self.budget_bits == 0 || max_bits == 0 {
            1
        } else {
            max_bits.div_ceil(self.budget_bits).max(1) as u64
        };
        self.congest_rounds += charge;
    }

    /// Folds one committed round's send-time counters into the run totals
    /// and charges the step — the arena engine's batched alternative to
    /// per-send [`Metrics::record_message`] calls (sums and maxes commute,
    /// so the resulting metrics are identical; the per-message oversize
    /// test already happened at send time).
    pub(crate) fn record_round(&mut self, stats: &crate::process::RoundStats) {
        self.messages += stats.messages;
        self.bits += stats.bits;
        if stats.max_bits > self.max_message_bits {
            self.max_message_bits = stats.max_bits;
        }
        self.oversize_messages += stats.oversize;
        self.delivered += stats.messages - stats.dropped + stats.duplicated;
        self.dropped += stats.dropped;
        self.duplicated += stats.duplicated;
        self.record_step(stats.max_bits);
    }

    /// Records one delivered message of `bits` payload bits.
    pub(crate) fn record_message(&mut self, bits: usize) {
        self.messages += 1;
        self.delivered += 1;
        self.bits += bits as u64;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
        if self.budget_bits > 0 && bits > self.budget_bits {
            self.oversize_messages += 1;
        }
    }

    /// Records a multi-send violation.
    pub(crate) fn record_multi_send(&mut self) {
        self.multi_send_violations += 1;
    }

    /// A point-in-time copy of the counters — the cheap snapshot hook the
    /// experiment harness streams into its aggregators (one `Copy` of nine
    /// words; no allocation, no borrow held).
    pub fn snapshot(&self) -> Metrics {
        *self
    }

    /// True when every message fit the CONGEST budget and no port was
    /// double-used — i.e. the run was a legal CONGEST execution without
    /// charged serialization.
    pub fn congest_clean(&self) -> bool {
        self.oversize_messages == 0 && self.multi_send_violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_charging() {
        let mut m = Metrics::new(10);
        m.record_step(0); // empty round: 1 congest round
        assert_eq!(m.rounds, 1);
        assert_eq!(m.congest_rounds, 1);
        m.record_step(10); // exactly budget: 1 round
        assert_eq!(m.congest_rounds, 2);
        m.record_step(11); // just over: 2 rounds
        assert_eq!(m.congest_rounds, 4);
        m.record_step(35); // 4 serialized rounds
        assert_eq!(m.congest_rounds, 8);
        assert_eq!(m.rounds, 4);
    }

    #[test]
    fn message_accounting() {
        let mut m = Metrics::new(8);
        m.record_message(5);
        m.record_message(9);
        assert_eq!(m.messages, 2);
        assert_eq!(m.delivered, 2);
        assert_eq!(m.bits, 14);
        assert_eq!(m.max_message_bits, 9);
        assert_eq!(m.oversize_messages, 1);
        assert!(!m.congest_clean());
    }

    #[test]
    fn fault_counters_reconcile_through_record_round() {
        let mut m = Metrics::new(8);
        let stats = crate::process::RoundStats {
            messages: 10,
            bits: 40,
            max_bits: 4,
            oversize: 0,
            dropped: 3,
            duplicated: 2,
        };
        m.record_round(&stats);
        assert_eq!(m.messages, 10);
        assert_eq!(m.dropped, 3);
        assert_eq!(m.duplicated, 2);
        // delivered = sent - dropped + duplicated, always.
        assert_eq!(m.delivered, m.messages - m.dropped + m.duplicated);
        assert!(m.congest_clean(), "faults are not protocol violations");
    }

    #[test]
    fn clean_run_detection() {
        let mut m = Metrics::new(16);
        m.record_step(12);
        m.record_message(12);
        assert!(m.congest_clean());
        m.record_multi_send();
        assert!(!m.congest_clean());
        assert_eq!(m.multi_send_violations, 1);
    }

    #[test]
    fn zero_budget_does_not_divide_by_zero() {
        let mut m = Metrics::new(0);
        m.record_step(100);
        assert_eq!(m.congest_rounds, 1);
        m.record_message(100);
        assert_eq!(m.oversize_messages, 0);
    }
}
