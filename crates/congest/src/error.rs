//! Error types for the `ale-congest` simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when wiring or running a simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CongestError {
    /// The number of supplied processes does not match the graph size.
    ProcessCountMismatch {
        /// Number of nodes in the graph.
        nodes: usize,
        /// Number of processes supplied.
        processes: usize,
    },
    /// A process emitted a message on a port it does not have.
    InvalidPort {
        /// The sending node (host-side id, for diagnostics only).
        node: usize,
        /// The offending port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// The run hit its round cap before the stop condition was met.
    RoundLimitExceeded {
        /// The cap that was hit.
        limit: u64,
    },
    /// An execution configuration (latency distribution / fault
    /// probabilities) failed validation at network construction time.
    BadExecConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::ProcessCountMismatch { nodes, processes } => write!(
                f,
                "process count {processes} does not match node count {nodes}"
            ),
            CongestError::InvalidPort { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            CongestError::RoundLimitExceeded { limit } => {
                write!(f, "round limit {limit} exceeded before stop condition")
            }
            CongestError::BadExecConfig { reason } => {
                write!(f, "bad execution config: {reason}")
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        for e in [
            CongestError::ProcessCountMismatch {
                nodes: 3,
                processes: 2,
            },
            CongestError::InvalidPort {
                node: 1,
                port: 9,
                degree: 2,
            },
            CongestError::RoundLimitExceeded { limit: 100 },
            CongestError::BadExecConfig {
                reason: "drop probability 1.5 outside [0, 1]".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
