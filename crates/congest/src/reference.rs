//! The slow, obviously-correct reference engine.
//!
//! [`ReferenceNetwork`] executes exactly the algorithm the simulator used
//! before the flat-arena engine landed: every node's sends are collected
//! into a plain `Vec` ([`OutCtx::collector`]), validated entry by entry
//! against a per-node `vec![false; degree]`, staged into `n` separate
//! per-receiver `Vec`s, and metered in a commit-phase rescan; halted nodes
//! are skipped by polling all `n` processes each round.
//!
//! It exists for two reasons:
//!
//! * **equivalence testing** — `crates/congest/tests/equivalence.rs` pins
//!   that the arena engine is observationally identical (outputs, metrics,
//!   per-round traces) on seeded graphs, including mid-run halts and the
//!   invalid-port drop-the-round path;
//! * **benchmarking** — `benches/simulator.rs` measures the arena engine's
//!   speedup against this baseline.
//!
//! Do not use it for experiments: it allocates per node per round and
//! scans all `n` nodes even when almost everything has halted. It is kept
//! deliberately naive.

use crate::error::CongestError;
use crate::metrics::{Metrics, RoundInfo, RoundTrace};
use crate::network::{node_rngs, RunStatus};
use crate::process::{Incoming, NodeCtx, OutCtx, Process};
use crate::trace::{TraceSink, TraceSlot};
use ale_graph::Graph;
use rand::rngs::StdRng;

/// The pre-arena engine: per-node staging `Vec`s, commit-phase metering,
/// O(n) halt polling. Same observable behavior as
/// [`Network`](crate::network::Network), kept as the equivalence oracle.
#[derive(Debug)]
pub struct ReferenceNetwork<'g, P: Process> {
    graph: &'g Graph,
    procs: Vec<P>,
    rngs: Vec<StdRng>,
    round: u64,
    metrics: Metrics,
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    staging: Vec<Vec<Incoming<P::Msg>>>,
    outbox: Vec<(usize, P::Msg)>,
    trace: Option<Vec<RoundTrace>>,
    sink: TraceSlot,
}

impl<'g, P: Process> ReferenceNetwork<'g, P> {
    /// Wires explicit process instances to the graph's nodes (the
    /// reference twin of [`Network::new`](crate::network::Network::new) —
    /// identical seeding, so runs are comparable trace for trace).
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] when `procs.len() != graph.n()`.
    pub fn new(
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
    ) -> Result<Self, CongestError> {
        if procs.len() != graph.n() {
            return Err(CongestError::ProcessCountMismatch {
                nodes: graph.n(),
                processes: procs.len(),
            });
        }
        let n = graph.n();
        Ok(ReferenceNetwork {
            graph,
            procs,
            rngs: node_rngs(n, seed),
            round: 0,
            metrics: Metrics::new(budget_bits),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            staging: (0..n).map(|_| Vec::new()).collect(),
            outbox: Vec::new(),
            trace: None,
            sink: TraceSlot::attach(),
        })
    }

    /// Builds one process per node with the factory `f` (the reference
    /// twin of [`Network::from_fn`](crate::network::Network::from_fn)).
    pub fn from_fn<F>(graph: &'g Graph, seed: u64, budget_bits: usize, mut f: F) -> Self
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        let n = graph.n();
        let mut rngs = node_rngs(n, seed);
        let procs = (0..n).map(|v| f(graph.degree(v), &mut rngs[v])).collect();
        ReferenceNetwork {
            graph,
            procs,
            rngs,
            round: 0,
            metrics: Metrics::new(budget_bits),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            staging: (0..n).map(|_| Vec::new()).collect(),
            outbox: Vec::new(),
            trace: None,
            sink: TraceSlot::attach(),
        }
    }

    /// Starts recording per-round statistics from the next step on.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded per-round trace (empty unless
    /// [`ReferenceNetwork::enable_trace`] was called).
    pub fn trace(&self) -> &[RoundTrace] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a streaming per-round observer (the reference twin of
    /// [`Network::set_trace_sink`](crate::network::Network::set_trace_sink)).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.replace(sink, &self.metrics);
    }

    /// Executes one synchronous round with the pre-arena algorithm.
    ///
    /// # Errors
    ///
    /// [`CongestError::InvalidPort`] on a protocol bug, dropping the whole
    /// round exactly as the arena engine does.
    pub fn step(&mut self) -> Result<(), CongestError> {
        use crate::message::Payload;

        let n = self.graph.n();
        debug_assert!(self.staging.iter().all(Vec::is_empty));

        let mut failure = None;
        'nodes: for v in 0..n {
            if self.procs[v].is_halted() {
                self.inboxes[v].clear();
                continue;
            }
            let degree = self.graph.degree(v);
            let mut ctx = NodeCtx {
                degree,
                round: self.round,
                rng: &mut self.rngs[v],
            };
            self.outbox.clear();
            let mut out = OutCtx::collector(degree, &mut self.outbox);
            self.procs[v].round(&mut ctx, &self.inboxes[v], &mut out);
            let mut used_ports = vec![false; degree];
            for (port, msg) in self.outbox.drain(..) {
                if port >= degree {
                    failure = Some(CongestError::InvalidPort {
                        node: v,
                        port,
                        degree,
                    });
                    break 'nodes;
                }
                if used_ports[port] {
                    self.metrics.record_multi_send();
                } else {
                    used_ports[port] = true;
                }
                let target = self.graph.port_target(v, port);
                let arrival = self.graph.reverse_port(v, port);
                self.staging[target].push(Incoming { port: arrival, msg });
            }
        }
        if let Some(e) = failure {
            self.outbox.clear();
            for staged in &mut self.staging {
                staged.clear();
            }
            return Err(e);
        }

        // Commit: meter the staged deliveries, then recycle buffers.
        let mut max_bits_this_round = 0usize;
        let mut messages_this_round = 0u64;
        let mut bits_this_round = 0u64;
        for staged in &self.staging {
            for incoming in staged {
                let bits = incoming.msg.bit_size();
                max_bits_this_round = max_bits_this_round.max(bits);
                messages_this_round += 1;
                bits_this_round += bits as u64;
                self.metrics.record_message(bits);
            }
        }
        self.metrics.record_step(max_bits_this_round);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(RoundTrace {
                round: self.round,
                messages: messages_this_round,
                bits: bits_this_round,
                max_bits: max_bits_this_round,
            });
        }
        self.sink.on_round(&RoundInfo {
            round: self.round,
            messages: messages_this_round,
            bits: bits_this_round,
            max_bits: max_bits_this_round,
            active: self.procs.iter().filter(|p| !p.is_halted()).count(),
            buffer_cap: self.outbox.capacity(),
        });
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        std::mem::swap(&mut self.inboxes, &mut self.staging);
        self.round += 1;
        Ok(())
    }

    /// Runs until every process halts, up to `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReferenceNetwork::step`] errors.
    pub fn run_to_halt(&mut self, max_rounds: u64) -> Result<RunStatus, CongestError> {
        let start = self.round;
        loop {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            if self.round - start >= max_rounds {
                return Ok(RunStatus::RoundLimit);
            }
            self.step()?;
        }
    }

    /// Runs exactly `rounds` rounds (or stops early if all halt).
    ///
    /// # Errors
    ///
    /// Propagates [`ReferenceNetwork::step`] errors.
    pub fn run_for(&mut self, rounds: u64) -> Result<RunStatus, CongestError> {
        let target = self.round + rounds;
        while self.round < target {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            self.step()?;
        }
        Ok(RunStatus::RoundLimit)
    }

    /// True when every process reports halted — O(n) by design (the
    /// arena engine's O(1) active set is one of the things it replaces).
    pub fn all_halted(&self) -> bool {
        self.procs.iter().all(Process::is_halted)
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Outputs of all processes, indexed by host-side node id.
    pub fn outputs(&self) -> Vec<P::Output> {
        self.procs.iter().map(Process::output).collect()
    }

    /// Borrows all processes (same inspection surface as the other
    /// engines, so engine-generic tests can dispatch over all three).
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of the metrics.
    pub fn metrics_snapshot(&self) -> Metrics {
        self.metrics.snapshot()
    }
}

impl<P: Process> Drop for ReferenceNetwork<'_, P> {
    fn drop(&mut self) {
        self.sink.finish(&self.metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;

    #[derive(Debug)]
    struct Pulse {
        left: u64,
        heard: u64,
    }
    impl Process for Pulse {
        type Msg = u64;
        type Output = u64;
        fn round(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            self.heard += inbox.len() as u64;
            if self.left > 0 {
                self.left -= 1;
                out.broadcast(1);
            }
        }
        fn is_halted(&self) -> bool {
            self.left == 0
        }
        fn output(&self) -> u64 {
            self.heard
        }
    }

    #[test]
    fn reference_engine_runs_and_meters() {
        let g = generators::cycle(5).unwrap();
        let mut net = ReferenceNetwork::from_fn(&g, 1, 64, |_, _| Pulse { left: 2, heard: 0 });
        net.enable_trace();
        let status = net.run_to_halt(10).unwrap();
        assert_eq!(status, RunStatus::AllHalted);
        assert_eq!(net.metrics().messages, 5 * 2 * 2);
        assert_eq!(net.trace().len() as u64, net.metrics().rounds);
    }
}
