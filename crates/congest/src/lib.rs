//! # ale-congest — synchronous anonymous CONGEST simulator
//!
//! A discrete, round-driven simulator of the model in Section 2 of
//! Kowalski & Mosteiro (ICDCS 2021): a connected undirected network of
//! **anonymous** nodes with port-numbered links, globally synchronous
//! rounds, reliable communication, and an `O(log n)`-bit per-link-per-round
//! CONGEST budget.
//!
//! * [`Process`] — one node's protocol state machine; sees only its degree,
//!   the round number, port-tagged messages, and private randomness.
//! * [`Network`] — wires processes to a graph and drives rounds.
//! * [`Metrics`] — rounds, CONGEST-charged rounds, messages, and bits; the
//!   units Theorems 1 and 3 of the paper bound.
//!
//! ## Quickstart
//!
//! ```
//! use ale_congest::{Network, Process, NodeCtx, Incoming, Outbox};
//! use ale_graph::generators;
//!
//! /// Every node forwards the maximum value it has seen for 3 rounds.
//! #[derive(Debug)]
//! struct Max(u64, u64);
//! impl Process for Max {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
//!         for m in inbox { self.0 = self.0.max(m.msg); }
//!         if self.1 == 0 { return Vec::new(); }
//!         self.1 -= 1;
//!         (0..ctx.degree).map(|p| (p, self.0)).collect()
//!     }
//!     fn is_halted(&self) -> bool { self.1 == 0 }
//!     fn output(&self) -> u64 { self.0 }
//! }
//!
//! let g = generators::complete(4)?;
//! let mut net = Network::from_fn(&g, 0, 32, |_d, _rng| Max(7, 3));
//! net.run_to_halt(10)?;
//! assert!(net.outputs().iter().all(|&v| v == 7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod message;
pub mod metrics;
pub mod network;
pub mod process;

pub use error::CongestError;
pub use message::{congest_budget, Payload};
pub use metrics::{Metrics, RoundTrace};
pub use network::{Network, RunStatus};
pub use process::{Incoming, NodeCtx, Outbox, Process};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn error_and_metrics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<RunStatus>();
    }
}
