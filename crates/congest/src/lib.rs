//! # ale-congest — anonymous CONGEST simulator
//!
//! A discrete simulator of the model in Section 2 of Kowalski & Mosteiro
//! (ICDCS 2021): a connected undirected network of **anonymous** nodes
//! with port-numbered links, globally synchronous rounds, reliable
//! communication, and an `O(log n)`-bit per-link-per-round CONGEST
//! budget — plus an event-driven asynchronous engine that relaxes the
//! synchrony and reliability assumptions behind the same [`Process`]
//! trait, for measuring degradation off the model.
//!
//! * [`Process`] — one node's protocol state machine; sees only its degree,
//!   the round number, port-tagged messages, and private randomness.
//! * [`OutCtx`] — the send handle: every send is validated, metered, and
//!   staged into the network's flat delivery arena at the moment it
//!   happens (see the [`process`] module docs for the `Outbox` → `OutCtx`
//!   migration).
//! * [`Network`] — wires processes to a graph and drives rounds on the
//!   zero-allocation arena engine (see the [`network`] module docs for the
//!   compute → send → commit → deliver pipeline and the engine
//!   invariants).
//! * [`reference::ReferenceNetwork`] — the slow pre-arena engine, kept as
//!   the equivalence oracle and benchmark baseline.
//! * [`async_net::AsyncNetwork`] — the event-driven asynchronous engine:
//!   per-message link latencies and a crash/drop/duplicate adversary
//!   ([`ExecConfig`]), byte-identical to [`Network`] at unit latency with
//!   zero faults.
//! * [`Metrics`] — rounds, CONGEST-charged rounds, messages, and bits; the
//!   units Theorems 1 and 3 of the paper bound. Bit-level metering is what
//!   lets runs be compared against bit-round bounds from the literature.
//!
//! ## Quickstart
//!
//! ```
//! use ale_congest::{Network, Process, NodeCtx, Incoming, OutCtx};
//! use ale_graph::generators;
//!
//! /// Every node forwards the maximum value it has seen for 3 rounds.
//! #[derive(Debug)]
//! struct Max(u64, u64);
//! impl Process for Max {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn round(&mut self, _ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
//!         for m in inbox { self.0 = self.0.max(m.msg); }
//!         if self.1 == 0 { return; }
//!         self.1 -= 1;
//!         out.broadcast(self.0);
//!     }
//!     fn is_halted(&self) -> bool { self.1 == 0 }
//!     fn output(&self) -> u64 { self.0 }
//! }
//!
//! let g = generators::complete(4)?;
//! let mut net = Network::from_fn(&g, 0, 32, |_d, _rng| Max(7, 3));
//! net.run_to_halt(10)?;
//! assert!(net.outputs().iter().all(|&v| v == 7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod async_net;
pub mod error;
pub mod message;
pub mod metrics;
pub mod network;
pub mod process;
pub mod reference;
pub mod testkit;
pub mod trace;

pub use async_net::{AsyncNetwork, ExecConfig, FaultSpec, LatencyDist};
pub use error::CongestError;
pub use message::{congest_budget, Payload};
pub use metrics::{Metrics, RoundInfo, RoundTrace};
pub use network::{Network, RunStatus};
pub use process::{Incoming, NodeCtx, OutCtx, Process};
pub use reference::ReferenceNetwork;
pub use testkit::{AnyNetwork, EngineKind};
pub use trace::{clear_trace_factory, install_trace_factory, TraceSink};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn error_and_metrics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<RunStatus>();
    }
}
