//! The synchronous network engine.
//!
//! [`Network`] couples a [`Graph`](ale_graph::Graph) with one [`Process`]
//! per node and drives them in globally synchronous rounds, exactly the
//! model of Section 2 of the paper: per round every node may send one
//! message through each port; all messages are delivered before the next
//! round; links and nodes do not fail.

use crate::error::CongestError;
use crate::metrics::{Metrics, RoundTrace};
use crate::process::{Incoming, NodeCtx, Process};
use ale_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a multi-round run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every process reported [`Process::is_halted`].
    AllHalted,
    /// The caller's predicate was satisfied.
    PredicateMet,
    /// The round cap was reached first.
    RoundLimit,
}

/// A synchronous anonymous network: a graph plus one process per node.
///
/// # Examples
///
/// ```
/// use ale_congest::{Network, Process, NodeCtx, Incoming, Outbox};
/// use ale_graph::generators;
///
/// // A one-shot flood: every node broadcasts its degree once, then halts.
/// #[derive(Debug)]
/// struct Shout { heard: u64, done: bool }
/// impl Process for Shout {
///     type Msg = u64;
///     type Output = u64;
///     fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
///         self.heard += inbox.iter().map(|m| m.msg).sum::<u64>();
///         if ctx.round == 0 {
///             (0..ctx.degree).map(|p| (p, ctx.degree as u64)).collect()
///         } else {
///             self.done = true;
///             Vec::new()
///         }
///     }
///     fn is_halted(&self) -> bool { self.done }
///     fn output(&self) -> u64 { self.heard }
/// }
///
/// let g = generators::cycle(5)?;
/// let mut net = Network::from_fn(&g, 42, 64, |_deg, _rng| Shout { heard: 0, done: false });
/// net.run_to_halt(10)?;
/// // Every node heard both neighbors' degrees (2 + 2).
/// assert!(net.outputs().iter().all(|&h| h == 4));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Network<'g, P: Process> {
    graph: &'g Graph,
    procs: Vec<P>,
    rngs: Vec<StdRng>,
    round: u64,
    metrics: Metrics,
    inboxes: Vec<Vec<Incoming<P::Msg>>>,
    /// Next round's inboxes, recycled with [`std::mem::swap`] every step so
    /// per-node buffers keep their capacity instead of reallocating each
    /// round (the simulator's hottest allocation before this change).
    staging: Vec<Vec<Incoming<P::Msg>>>,
    trace: Option<Vec<RoundTrace>>,
}

/// SplitMix64 step, used to derive independent per-node seeds from the
/// experiment seed without exposing node ids to protocols.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<'g, P: Process> Network<'g, P> {
    /// Wires explicit process instances to the graph's nodes.
    ///
    /// `budget_bits` is the CONGEST per-link-per-round budget used for
    /// metering (see [`crate::message::congest_budget`]).
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] when `procs.len() != graph.n()`.
    pub fn new(
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
    ) -> Result<Self, CongestError> {
        if procs.len() != graph.n() {
            return Err(CongestError::ProcessCountMismatch {
                nodes: graph.n(),
                processes: procs.len(),
            });
        }
        let n = graph.n();
        let rngs = (0..n)
            .map(|v| StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(v as u64 + 1))))
            .collect();
        Ok(Network {
            graph,
            procs,
            rngs,
            round: 0,
            metrics: Metrics::new(budget_bits),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            staging: (0..n).map(|_| Vec::new()).collect(),
            trace: None,
        })
    }

    /// Builds one process per node with the factory `f`, which receives the
    /// node's degree and its (already seeded) RNG — the same information the
    /// process itself will be allowed to see.
    pub fn from_fn<F>(graph: &'g Graph, seed: u64, budget_bits: usize, mut f: F) -> Self
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        let n = graph.n();
        let mut rngs: Vec<StdRng> = (0..n)
            .map(|v| StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(v as u64 + 1))))
            .collect();
        let procs = (0..n).map(|v| f(graph.degree(v), &mut rngs[v])).collect();
        Network {
            graph,
            procs,
            rngs,
            round: 0,
            metrics: Metrics::new(budget_bits),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            staging: (0..n).map(|_| Vec::new()).collect(),
            trace: None,
        }
    }

    /// Starts recording per-round statistics (message/bit profiles) from
    /// the next [`Network::step`] on. Cheap: one record per round.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded per-round trace (empty unless
    /// [`Network::enable_trace`] was called).
    pub fn trace(&self) -> &[RoundTrace] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Executes one synchronous round.
    ///
    /// # Errors
    ///
    /// [`CongestError::InvalidPort`] if a process addresses a port it does
    /// not have (a protocol bug surfaced as an error, never UB).
    pub fn step(&mut self) -> Result<(), CongestError> {
        use crate::message::Payload;

        let n = self.graph.n();
        debug_assert!(self.staging.iter().all(Vec::is_empty));

        let mut failure = None;
        'nodes: for v in 0..n {
            if self.procs[v].is_halted() {
                self.inboxes[v].clear();
                continue;
            }
            let degree = self.graph.degree(v);
            let mut ctx = NodeCtx {
                degree,
                round: self.round,
                rng: &mut self.rngs[v],
            };
            let outbox = self.procs[v].round(&mut ctx, &self.inboxes[v]);
            let mut used_ports = vec![false; degree];
            for (port, msg) in outbox {
                if port >= degree {
                    failure = Some(CongestError::InvalidPort {
                        node: v,
                        port,
                        degree,
                    });
                    break 'nodes;
                }
                if used_ports[port] {
                    self.metrics.record_multi_send();
                } else {
                    used_ports[port] = true;
                }
                let target = self.graph.port_target(v, port);
                let arrival = self.graph.reverse_port(v, port);
                self.staging[target].push(Incoming { port: arrival, msg });
            }
        }
        if let Some(e) = failure {
            // A protocol bug surfaced mid-round: drop the partial round so
            // the network stays consistent for inspection (inboxes intact,
            // staging empty, no messages metered) — matching the pre-
            // recycling behavior where a failed step delivered nothing.
            for staged in &mut self.staging {
                staged.clear();
            }
            return Err(e);
        }

        // Commit: meter the staged deliveries, then recycle buffers.
        let mut max_bits_this_round = 0usize;
        let mut messages_this_round = 0u64;
        let mut bits_this_round = 0u64;
        for staged in &self.staging {
            for incoming in staged {
                let bits = incoming.msg.bit_size();
                max_bits_this_round = max_bits_this_round.max(bits);
                messages_this_round += 1;
                bits_this_round += bits as u64;
                self.metrics.record_message(bits);
            }
        }
        self.metrics.record_step(max_bits_this_round);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(RoundTrace {
                round: self.round,
                messages: messages_this_round,
                bits: bits_this_round,
                max_bits: max_bits_this_round,
            });
        }
        // Swap instead of reallocating: last round's inboxes (now fully
        // consumed) become next round's staging buffers, keeping their
        // capacity across rounds.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        std::mem::swap(&mut self.inboxes, &mut self.staging);
        self.round += 1;
        Ok(())
    }

    /// Runs until every process halts, up to `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_to_halt(&mut self, max_rounds: u64) -> Result<RunStatus, CongestError> {
        self.run_until(max_rounds, |_| false)
    }

    /// Runs exactly `rounds` rounds (or stops early if all processes halt).
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_for(&mut self, rounds: u64) -> Result<RunStatus, CongestError> {
        let target = self.round + rounds;
        while self.round < target {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            self.step()?;
        }
        Ok(RunStatus::RoundLimit)
    }

    /// Runs until all processes halt, `pred` becomes true (checked after
    /// every round), or `max_rounds` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut pred: F) -> Result<RunStatus, CongestError>
    where
        F: FnMut(&Self) -> bool,
    {
        let start = self.round;
        loop {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            if self.round - start >= max_rounds {
                return Ok(RunStatus::RoundLimit);
            }
            self.step()?;
            if pred(self) {
                return Ok(RunStatus::PredicateMet);
            }
        }
    }

    /// True when every process reports halted.
    pub fn all_halted(&self) -> bool {
        self.procs.iter().all(Process::is_halted)
    }

    /// Current round number (rounds executed so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Outputs of all processes, indexed by host-side node id.
    pub fn outputs(&self) -> Vec<P::Output> {
        self.procs.iter().map(Process::output).collect()
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of the metrics (see [`Metrics::snapshot`]).
    pub fn metrics_snapshot(&self) -> Metrics {
        self.metrics.snapshot()
    }

    /// Borrows a single process for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn process(&self, v: NodeId) -> &P {
        &self.procs[v]
    }

    /// Borrows all processes.
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Outbox;
    use ale_graph::generators;
    use rand::Rng;

    /// Forwards the largest value seen to all ports every round; starts
    /// from a random draw. Standard flood-max — a convenient test vehicle.
    #[derive(Debug)]
    struct FloodMax {
        value: u64,
        rounds_left: u64,
    }

    impl Process for FloodMax {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
            for m in inbox {
                self.value = self.value.max(m.msg);
            }
            if self.rounds_left == 0 {
                return Vec::new();
            }
            self.rounds_left -= 1;
            (0..ctx.degree).map(|p| (p, self.value)).collect()
        }

        fn is_halted(&self) -> bool {
            self.rounds_left == 0
        }

        fn output(&self) -> u64 {
            self.value
        }
    }

    fn flood_network<'g>(g: &'g Graph, seed: u64, rounds: u64) -> Network<'g, FloodMax> {
        Network::from_fn(g, seed, 64, |_deg, rng| FloodMax {
            value: rng.gen::<u64>() >> 20,
            rounds_left: rounds,
        })
    }

    use ale_graph::Graph;

    #[test]
    fn flood_max_converges_on_diameter_rounds() {
        let g = generators::cycle(9).unwrap();
        let d = g.diameter() as u64;
        let mut net = flood_network(&g, 7, d + 1);
        let status = net.run_to_halt(1000).unwrap();
        assert_eq!(status, RunStatus::AllHalted);
        let outs = net.outputs();
        let max = *outs.iter().max().unwrap();
        assert!(outs.iter().all(|&v| v == max), "flood-max must agree");
    }

    #[test]
    fn metrics_count_messages_exactly() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g, 1, 3);
        net.run_to_halt(100).unwrap();
        // 6 nodes × 2 ports × 3 sending rounds = 36 messages.
        assert_eq!(net.metrics().messages, 36);
        assert!(net.metrics().bits > 0);
        // All nodes halt right after their 3 sending rounds.
        assert_eq!(net.metrics().rounds, 3);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let g = generators::random_regular(20, 3, 5).unwrap();
        let mut a = flood_network(&g, 123, 10);
        let mut b = flood_network(&g, 123, 10);
        a.run_to_halt(100).unwrap();
        b.run_to_halt(100).unwrap();
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn different_seeds_differ() {
        let g = generators::cycle(16).unwrap();
        let a = flood_network(&g, 1, 0);
        let b = flood_network(&g, 2, 0);
        assert_ne!(
            a.outputs(),
            b.outputs(),
            "independent seeds should draw different values"
        );
    }

    #[test]
    fn per_node_rngs_are_independent() {
        let g = generators::cycle(16).unwrap();
        let net = flood_network(&g, 1, 0);
        let outs = net.outputs();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 8, "values should be (mostly) distinct");
    }

    #[test]
    fn process_count_mismatch_rejected() {
        let g = generators::cycle(4).unwrap();
        let procs = vec![
            FloodMax {
                value: 0,
                rounds_left: 1,
            };
            3
        ];
        assert!(matches!(
            Network::new(&g, procs, 0, 64),
            Err(CongestError::ProcessCountMismatch {
                nodes: 4,
                processes: 3
            })
        ));
    }

    impl Clone for FloodMax {
        fn clone(&self) -> Self {
            FloodMax {
                value: self.value,
                rounds_left: self.rounds_left,
            }
        }
    }

    /// A buggy process that sends on an invalid port.
    #[derive(Debug)]
    struct BadPort;
    impl Process for BadPort {
        type Msg = u64;
        type Output = ();
        fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Incoming<u64>]) -> Outbox<u64> {
            vec![(ctx.degree + 5, 1)]
        }
        fn output(&self) {}
    }

    #[test]
    fn invalid_port_is_an_error() {
        let g = generators::cycle(3).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| BadPort);
        assert!(matches!(net.step(), Err(CongestError::InvalidPort { .. })));
        // The failed round is dropped wholesale: nothing metered, and the
        // recycled staging buffers are clean, so stepping again errors the
        // same way instead of double-delivering a stale half-round.
        assert_eq!(net.metrics().messages, 0);
        assert_eq!(net.metrics().rounds, 0);
        assert!(matches!(net.step(), Err(CongestError::InvalidPort { .. })));
        assert_eq!(net.metrics().messages, 0);
    }

    /// A process that double-sends on port 0.
    #[derive(Debug)]
    struct DoubleSend;
    impl Process for DoubleSend {
        type Msg = u64;
        type Output = ();
        fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &[Incoming<u64>]) -> Outbox<u64> {
            if ctx.round == 0 {
                vec![(0, 1), (0, 2)]
            } else {
                Vec::new()
            }
        }
        fn output(&self) {}
    }

    #[test]
    fn multi_send_is_recorded_not_merged() {
        let g = generators::cycle(3).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| DoubleSend);
        net.step().unwrap();
        assert_eq!(net.metrics().multi_send_violations, 3);
        assert_eq!(net.metrics().messages, 6);
        assert!(!net.metrics().congest_clean());
    }

    #[test]
    fn trace_records_per_round_stats() {
        let g = generators::cycle(4).unwrap();
        let mut net = flood_network(&g, 2, 3);
        net.enable_trace();
        net.run_to_halt(100).unwrap();
        let trace = net.trace();
        assert_eq!(trace.len() as u64, net.metrics().rounds);
        let total: u64 = trace.iter().map(|t| t.messages).sum();
        assert_eq!(total, net.metrics().messages);
        assert_eq!(trace[0].round, 0);
        assert!(trace[0].max_bits > 0);
        // Without enable_trace the slice is empty.
        let mut quiet = flood_network(&g, 2, 3);
        quiet.run_to_halt(100).unwrap();
        assert!(quiet.trace().is_empty());
    }

    #[test]
    fn metrics_snapshots_are_point_in_time() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g, 1, 5);
        net.step().unwrap();
        let early = net.metrics_snapshot();
        net.run_to_halt(100).unwrap();
        let late = net.metrics_snapshot();
        assert_eq!(early.rounds, 1);
        assert!(late.messages > early.messages);
        assert_eq!(late, *net.metrics());
    }

    #[test]
    fn recycled_inboxes_preserve_delivery_semantics() {
        // Two flood networks, one stepped manually round by round, must
        // match a reference run exactly — the buffer-recycling fast path
        // may not change what any process observes.
        let g = generators::random_regular(18, 4, 2).unwrap();
        let mut a = flood_network(&g, 42, 12);
        let mut b = flood_network(&g, 42, 12);
        a.run_to_halt(100).unwrap();
        while !b.all_halted() {
            b.step().unwrap();
        }
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn run_until_predicate() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 100);
        let status = net.run_until(1000, |n| n.round() >= 5).unwrap();
        assert_eq!(status, RunStatus::PredicateMet);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn run_for_exact_rounds() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 100);
        let status = net.run_for(7).unwrap();
        assert_eq!(status, RunStatus::RoundLimit);
        assert_eq!(net.round(), 7);
    }

    #[test]
    fn round_limit_status() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 1000);
        let status = net.run_to_halt(4).unwrap();
        assert_eq!(status, RunStatus::RoundLimit);
    }

    #[test]
    fn messages_are_delivered_through_correct_ports() {
        // Directed probe: node sends its port index; receiver checks the
        // arrival port maps back to the sender.
        #[derive(Debug)]
        struct PortProbe {
            ok: bool,
            sent: bool,
        }
        impl Process for PortProbe {
            type Msg = u64;
            type Output = bool;
            fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
                for m in inbox {
                    // Every neighbor sent through every port; payload is the
                    // *sender's* port number. Sender and receiver ports are
                    // linked by the reverse-port relation which the network
                    // guarantees; here we just check message count.
                    let _ = m;
                }
                if ctx.round == 1 {
                    self.ok = inbox.len() == ctx.degree;
                }
                if !self.sent {
                    self.sent = true;
                    return (0..ctx.degree).map(|p| (p, p as u64)).collect();
                }
                Vec::new()
            }
            fn is_halted(&self) -> bool {
                self.sent
            }
            fn output(&self) -> bool {
                self.ok
            }
        }
        let g = generators::complete(5).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| PortProbe {
            ok: false,
            sent: false,
        });
        // Round 0: everyone sends; round 1 would check, but all halt after
        // sending. Drive two steps manually so inboxes are observed.
        net.step().unwrap();
        // All halted now, but inboxes hold messages; verify via metrics.
        assert_eq!(net.metrics().messages, 5 * 4);
    }
}
