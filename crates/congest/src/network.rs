//! The synchronous network engine (flat-arena fast path).
//!
//! [`Network`] couples an [`ale_graph::Graph`] with one [`Process`]
//! per node and drives them in globally synchronous rounds, exactly the
//! model of Section 2 of the paper: per round every node may send one
//! message through each port; all messages are delivered before the next
//! round; links and nodes do not fail.
//!
//! # Engine design: zero allocation per round
//!
//! A round has four stages — compute, send, commit, deliver — all running
//! on buffers owned by the network whose capacity persists across rounds:
//!
//! 1. **compute** — every *active* (non-halted) process runs
//!    [`Process::round`] against its slice of the flat inbox arena
//!    (`in_arena[in_start[v]..in_end[v]]`);
//! 2. **send** — each [`OutCtx::send`] validates the port, stamps the
//!    port-use mark (multi-send detection without a per-node `Vec<bool>`),
//!    accumulates [`bit_size`](crate::message::Payload::bit_size) into a
//!    stack-local per-round counter batch, and appends the message plus
//!    its target to the staging arena through one fused
//!    target/reverse-port lookup — counters are gathered at send time and
//!    folded into the metrics *once per round* at commit, so commit never
//!    rescans messages and the hot path never touches the `Metrics`
//!    struct;
//! 3. **commit** — a stable counting sort by target (bucket offsets from
//!    the per-target counts accumulated during sends, then a destination
//!    index per staged message) lays out where every message belongs;
//! 4. **deliver** — the staging buffer is gathered through those indices
//!    into the recycled inbox arena (one `Msg::clone` per delivery — a
//!    memcpy for the `Copy`-like payloads protocols use; a payload owning
//!    heap data would pay one allocation per delivered message here);
//!    per-target `(start, end)` ranges become next round's inboxes. Only
//!    buckets touched this round are reset, so a quiet round costs
//!    `O(active + messages)`, not `O(n)`.
//!
//! Halted processes leave the **active set** permanently (see the
//! [`Process::is_halted`] invariant), making [`Network::all_halted`] O(1)
//! and letting mostly-halted networks step in time proportional to the
//! survivors, not the graph.
//!
//! # Engine invariants
//!
//! * **Observational equivalence.** No process can distinguish this engine
//!   from the naive per-node-`Vec` reference implementation
//!   ([`reference::ReferenceNetwork`](crate::reference::ReferenceNetwork)):
//!   outputs, metrics, and per-round traces are identical for identical
//!   seeds. `crates/congest/tests/equivalence.rs` pins this.
//! * **Within-inbox order.** Messages arrive ordered by sending node id,
//!   then by send order within the node (the counting sort is stable).
//!   Processes must not rely on this — it is an artifact, not part of the
//!   model — but it is deterministic and preserved.
//! * **Failed rounds deliver nothing.** An invalid port aborts the round:
//!   no messages are delivered or metered, the round counter does not
//!   advance, and inboxes are preserved for inspection. Multi-send
//!   violations recorded before the failure stick (they already happened).
//! * **Halting is permanent** (see [`Process::is_halted`]).

use crate::error::CongestError;
use crate::metrics::{Metrics, RoundInfo, RoundTrace};
use crate::process::{EngineSink, Incoming, NodeCtx, OutCtx, Process, RoundStats, Sink};
use crate::trace::{TraceSink, TraceSlot};
use ale_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a multi-round run returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every process reported [`Process::is_halted`].
    AllHalted,
    /// The caller's predicate was satisfied.
    PredicateMet,
    /// The round cap was reached first.
    RoundLimit,
}

/// A synchronous anonymous network: a graph plus one process per node.
///
/// # Examples
///
/// ```
/// use ale_congest::{Network, Process, NodeCtx, Incoming, OutCtx};
/// use ale_graph::generators;
///
/// // A one-shot flood: every node broadcasts its degree once, then halts.
/// #[derive(Debug)]
/// struct Shout { heard: u64, done: bool }
/// impl Process for Shout {
///     type Msg = u64;
///     type Output = u64;
///     fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
///         self.heard += inbox.iter().map(|m| m.msg).sum::<u64>();
///         if ctx.round == 0 {
///             out.broadcast(ctx.degree as u64);
///         } else {
///             self.done = true;
///         }
///     }
///     fn is_halted(&self) -> bool { self.done }
///     fn output(&self) -> u64 { self.heard }
/// }
///
/// let g = generators::cycle(5)?;
/// let mut net = Network::from_fn(&g, 42, 64, |_deg, _rng| Shout { heard: 0, done: false });
/// net.run_to_halt(10)?;
/// // Every node heard both neighbors' degrees (2 + 2).
/// assert!(net.outputs().iter().all(|&h| h == 4));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Network<'g, P: Process> {
    graph: &'g Graph,
    procs: Vec<P>,
    rngs: Vec<StdRng>,
    round: u64,
    metrics: Metrics,
    trace: Option<Vec<RoundTrace>>,
    /// This round's inboxes: one flat buffer, grouped by receiver.
    in_arena: Vec<Incoming<P::Msg>>,
    /// Per-node inbox range into `in_arena` (CSR-style row pointers; both
    /// zero for nodes that received nothing).
    in_start: Vec<u32>,
    in_end: Vec<u32>,
    /// Next round's messages in send order; becomes `in_arena` at commit.
    staged_msgs: Vec<Incoming<P::Msg>>,
    /// Target node per staged message (parallel to `staged_msgs`).
    staged_targets: Vec<u32>,
    /// Commit scratch: destination index of each staged message.
    dest: Vec<u32>,
    /// Per-target staged-message counts (non-zero only for `touched`
    /// targets mid-round; always restored to zero by commit/abort).
    counts: Vec<u32>,
    /// Targets with staged messages this round / last round.
    touched: Vec<u32>,
    prev_touched: Vec<u32>,
    /// Port-use marks for multi-send detection, indexed by port and epoch-
    /// stamped per node visit — never cleared, `max_degree` entries total.
    port_marks: Vec<u64>,
    mark: u64,
    /// Non-halted node ids, ascending. Nodes leave when they halt and
    /// never return (see the `Process::is_halted` invariant).
    active: Vec<u32>,
    /// Streaming per-round observer (see [`crate::trace`]); empty unless
    /// a sink was set explicitly or a thread-local factory was installed.
    sink: TraceSlot,
}

/// SplitMix64 step, used to derive independent per-node seeds from the
/// experiment seed without exposing node ids to protocols (and, in the
/// asynchronous engine, to derive its positional adversary streams).
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-node RNGs every engine (arena and reference) derives from an
/// experiment seed — shared so both observe identical random streams.
pub(crate) fn node_rngs(n: usize, seed: u64) -> Vec<StdRng> {
    (0..n)
        .map(|v| StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(v as u64 + 1))))
        .collect()
}

impl<'g, P: Process> Network<'g, P> {
    fn build(graph: &'g Graph, procs: Vec<P>, rngs: Vec<StdRng>, budget_bits: usize) -> Self {
        let n = graph.n();
        assert!(n <= u32::MAX as usize, "node ids must fit in u32");
        let active = (0..n)
            .filter(|&v| !procs[v].is_halted())
            .map(|v| v as u32)
            .collect();
        Network {
            graph,
            procs,
            rngs,
            round: 0,
            metrics: Metrics::new(budget_bits),
            trace: None,
            in_arena: Vec::new(),
            in_start: vec![0; n],
            in_end: vec![0; n],
            staged_msgs: Vec::new(),
            staged_targets: Vec::new(),
            dest: Vec::new(),
            counts: vec![0; n],
            touched: Vec::new(),
            prev_touched: Vec::new(),
            port_marks: vec![0; graph.max_degree()],
            mark: 0,
            active,
            sink: TraceSlot::attach(),
        }
    }

    /// Wires explicit process instances to the graph's nodes.
    ///
    /// `budget_bits` is the CONGEST per-link-per-round budget used for
    /// metering (see [`crate::message::congest_budget`]).
    ///
    /// # Errors
    ///
    /// [`CongestError::ProcessCountMismatch`] when `procs.len() != graph.n()`.
    pub fn new(
        graph: &'g Graph,
        procs: Vec<P>,
        seed: u64,
        budget_bits: usize,
    ) -> Result<Self, CongestError> {
        if procs.len() != graph.n() {
            return Err(CongestError::ProcessCountMismatch {
                nodes: graph.n(),
                processes: procs.len(),
            });
        }
        let rngs = node_rngs(graph.n(), seed);
        Ok(Self::build(graph, procs, rngs, budget_bits))
    }

    /// Builds one process per node with the factory `f`, which receives the
    /// node's degree and its (already seeded) RNG — the same information the
    /// process itself will be allowed to see.
    pub fn from_fn<F>(graph: &'g Graph, seed: u64, budget_bits: usize, mut f: F) -> Self
    where
        F: FnMut(usize, &mut StdRng) -> P,
    {
        let n = graph.n();
        let mut rngs = node_rngs(n, seed);
        let procs = (0..n).map(|v| f(graph.degree(v), &mut rngs[v])).collect();
        Self::build(graph, procs, rngs, budget_bits)
    }

    /// Starts recording per-round statistics (message/bit profiles) from
    /// the next [`Network::step`] on. Cheap: one record per round.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded per-round trace (empty unless
    /// [`Network::enable_trace`] was called).
    pub fn trace(&self) -> &[RoundTrace] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a streaming per-round observer (replacing — and ending —
    /// any sink attached earlier, including one auto-attached by
    /// [`crate::trace::install_trace_factory`]). The sink sees every
    /// successfully committed round from now on and the final metrics
    /// when the network is dropped.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.replace(sink, &self.metrics);
    }

    /// Executes one synchronous round (see the
    /// [module docs](crate::network) for the compute → send → commit →
    /// deliver pipeline).
    ///
    /// # Errors
    ///
    /// [`CongestError::InvalidPort`] if a process addresses a port it does
    /// not have (a protocol bug surfaced as an error, never UB). The
    /// failed round is dropped wholesale: nothing is delivered or metered
    /// and the round counter does not advance.
    pub fn step(&mut self) -> Result<(), CongestError> {
        debug_assert!(self.staged_msgs.is_empty() && self.touched.is_empty());
        let mut stats = RoundStats::default();
        let mut failure: Option<CongestError> = None;
        let mut any_halted = false;

        // Compute + send: drive every active process; sends stream into
        // the staging arena through the node's `OutCtx`.
        {
            let Network {
                graph,
                procs,
                rngs,
                round,
                metrics,
                in_arena,
                in_start,
                in_end,
                staged_msgs,
                staged_targets,
                counts,
                touched,
                port_marks,
                mark,
                active,
                ..
            } = self;
            for &v in active.iter() {
                let v = v as usize;
                let degree = graph.degree(v);
                let inbox = &in_arena[in_start[v] as usize..in_end[v] as usize];
                let mut ctx = NodeCtx {
                    degree,
                    round: *round,
                    rng: &mut rngs[v],
                };
                *mark += 1;
                let mut out = OutCtx {
                    degree,
                    sink: Sink::Engine(EngineSink {
                        node: v,
                        graph,
                        staged_targets,
                        staged_msgs,
                        counts,
                        touched,
                        marks: &mut port_marks[..degree],
                        mark: *mark,
                        metrics,
                        stats: &mut stats,
                        failure: &mut failure,
                    }),
                };
                procs[v].round(&mut ctx, inbox, &mut out);
                if failure.is_some() {
                    break;
                }
                if procs[v].is_halted() {
                    any_halted = true;
                }
            }
        }

        if let Some(e) = failure {
            // A protocol bug surfaced mid-round: drop the partial round so
            // the network stays consistent for inspection — inboxes intact,
            // staging empty, round not advanced. The round's send counters
            // live only in the dropped `stats` batch, so nothing was
            // metered; multi-send violations recorded before the failure
            // stick (they go straight to the metrics), matching the outbox
            // engine's behavior.
            self.staged_msgs.clear();
            self.staged_targets.clear();
            for &t in &self.touched {
                self.counts[t as usize] = 0;
            }
            self.touched.clear();
            // Nodes that ran before the failure may have halted.
            let procs = &self.procs;
            self.active.retain(|&v| !procs[v as usize].is_halted());
            return Err(e);
        }

        if any_halted {
            let procs = &self.procs;
            self.active.retain(|&v| !procs[v as usize].is_halted());
        }

        // Commit: group the staging arena by target with a stable counting
        // sort. First retire last round's inbox ranges (their arena is
        // about to be recycled), then lay out this round's buckets.
        for &t in &self.prev_touched {
            self.in_start[t as usize] = 0;
            self.in_end[t as usize] = 0;
        }
        self.prev_touched.clear();

        let staged = self.staged_msgs.len();
        let mut acc = 0u32;
        for &t in &self.touched {
            let t = t as usize;
            let c = self.counts[t];
            self.in_start[t] = acc;
            self.in_end[t] = acc + c;
            self.counts[t] = acc; // reuse as the bucket write cursor
            acc += c;
        }
        // Stable scatter order: `order[j]` is the staging index of the
        // message that belongs at arena position `j`.
        self.dest.clear();
        self.dest.resize(staged, 0);
        for (i, &t) in self.staged_targets.iter().enumerate() {
            let t = t as usize;
            self.dest[self.counts[t] as usize] = i as u32;
            self.counts[t] += 1;
        }
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        std::mem::swap(&mut self.prev_touched, &mut self.touched);
        self.staged_targets.clear();

        // Deliver: gather the staging buffer into the (recycled) inbox
        // arena in delivery order. `Payload: Clone` makes this a move-free
        // gather; for the `Copy`-like payloads protocols use it compiles
        // to a permuted memcpy.
        let staged_msgs = &self.staged_msgs;
        self.in_arena.clear();
        self.in_arena.extend(self.dest.iter().map(|&i| {
            let m = &staged_msgs[i as usize];
            Incoming {
                port: m.port,
                msg: m.msg.clone(),
            }
        }));
        self.staged_msgs.clear();

        // Capacity bound: when traffic collapses well below a buffer's
        // high-water mark (nodes halting, protocol going quiet), release
        // the excess so resident memory tracks *in-flight* messages, not
        // the historical peak. The 8× hysteresis keeps steady-state
        // protocols (e.g. never-halting revocable election) from ever
        // reallocating.
        let watermark = staged.max(64) * 8;
        if self.in_arena.capacity() > watermark {
            self.in_arena.shrink_to(staged.max(64) * 2);
            self.staged_msgs.shrink_to(staged.max(64) * 2);
            self.staged_targets.shrink_to(staged.max(64) * 2);
            self.dest.shrink_to(staged.max(64) * 2);
        }

        self.metrics.record_round(&stats);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(RoundTrace {
                round: self.round,
                messages: stats.messages,
                bits: stats.bits,
                max_bits: stats.max_bits,
            });
        }
        self.sink.on_round(&RoundInfo {
            round: self.round,
            messages: stats.messages,
            bits: stats.bits,
            max_bits: stats.max_bits,
            active: self.active.len(),
            buffer_cap: self.in_arena.capacity(),
        });
        self.round += 1;
        Ok(())
    }

    /// Runs until every process halts, up to `max_rounds`.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_to_halt(&mut self, max_rounds: u64) -> Result<RunStatus, CongestError> {
        self.run_until(max_rounds, |_| false)
    }

    /// Runs exactly `rounds` rounds (or stops early if all processes halt).
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_for(&mut self, rounds: u64) -> Result<RunStatus, CongestError> {
        let target = self.round + rounds;
        while self.round < target {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            self.step()?;
        }
        Ok(RunStatus::RoundLimit)
    }

    /// Runs until all processes halt, `pred` becomes true (checked after
    /// every round), or `max_rounds` elapse.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut pred: F) -> Result<RunStatus, CongestError>
    where
        F: FnMut(&Self) -> bool,
    {
        let start = self.round;
        loop {
            if self.all_halted() {
                return Ok(RunStatus::AllHalted);
            }
            if self.round - start >= max_rounds {
                return Ok(RunStatus::RoundLimit);
            }
            self.step()?;
            if pred(self) {
                return Ok(RunStatus::PredicateMet);
            }
        }
    }

    /// True when every process reports halted — O(1): the engine keeps a
    /// halted count instead of polling all `n` processes per round.
    pub fn all_halted(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of processes that have not halted yet.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Current round number (rounds executed so far).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Outputs of all processes, indexed by host-side node id.
    pub fn outputs(&self) -> Vec<P::Output> {
        self.procs.iter().map(Process::output).collect()
    }

    /// Borrows the accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A point-in-time copy of the metrics (see [`Metrics::snapshot`]).
    pub fn metrics_snapshot(&self) -> Metrics {
        self.metrics.snapshot()
    }

    /// Borrows a single process for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn process(&self, v: NodeId) -> &P {
        &self.procs[v]
    }

    /// Borrows all processes.
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

impl<P: Process> Drop for Network<'_, P> {
    fn drop(&mut self) {
        self.sink.finish(&self.metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ale_graph::generators;
    use rand::Rng;

    /// Forwards the largest value seen to all ports every round; starts
    /// from a random draw. Standard flood-max — a convenient test vehicle.
    #[derive(Debug)]
    struct FloodMax {
        value: u64,
        rounds_left: u64,
    }

    impl Process for FloodMax {
        type Msg = u64;
        type Output = u64;

        fn round(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            for m in inbox {
                self.value = self.value.max(m.msg);
            }
            if self.rounds_left == 0 {
                return;
            }
            self.rounds_left -= 1;
            out.broadcast(self.value);
        }

        fn is_halted(&self) -> bool {
            self.rounds_left == 0
        }

        fn output(&self) -> u64 {
            self.value
        }
    }

    fn flood_network<'g>(g: &'g Graph, seed: u64, rounds: u64) -> Network<'g, FloodMax> {
        Network::from_fn(g, seed, 64, |_deg, rng| FloodMax {
            value: rng.gen::<u64>() >> 20,
            rounds_left: rounds,
        })
    }

    use ale_graph::Graph;

    #[test]
    fn flood_max_converges_on_diameter_rounds() {
        let g = generators::cycle(9).unwrap();
        let d = g.diameter() as u64;
        let mut net = flood_network(&g, 7, d + 1);
        let status = net.run_to_halt(1000).unwrap();
        assert_eq!(status, RunStatus::AllHalted);
        let outs = net.outputs();
        let max = *outs.iter().max().unwrap();
        assert!(outs.iter().all(|&v| v == max), "flood-max must agree");
    }

    #[test]
    fn metrics_count_messages_exactly() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g, 1, 3);
        net.run_to_halt(100).unwrap();
        // 6 nodes × 2 ports × 3 sending rounds = 36 messages.
        assert_eq!(net.metrics().messages, 36);
        assert!(net.metrics().bits > 0);
        // All nodes halt right after their 3 sending rounds.
        assert_eq!(net.metrics().rounds, 3);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let g = generators::random_regular(20, 3, 5).unwrap();
        let mut a = flood_network(&g, 123, 10);
        let mut b = flood_network(&g, 123, 10);
        a.run_to_halt(100).unwrap();
        b.run_to_halt(100).unwrap();
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn different_seeds_differ() {
        let g = generators::cycle(16).unwrap();
        let a = flood_network(&g, 1, 0);
        let b = flood_network(&g, 2, 0);
        assert_ne!(
            a.outputs(),
            b.outputs(),
            "independent seeds should draw different values"
        );
    }

    #[test]
    fn per_node_rngs_are_independent() {
        let g = generators::cycle(16).unwrap();
        let net = flood_network(&g, 1, 0);
        let outs = net.outputs();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 8, "values should be (mostly) distinct");
    }

    #[test]
    fn process_count_mismatch_rejected() {
        let g = generators::cycle(4).unwrap();
        let procs = vec![
            FloodMax {
                value: 0,
                rounds_left: 1,
            };
            3
        ];
        assert!(matches!(
            Network::new(&g, procs, 0, 64),
            Err(CongestError::ProcessCountMismatch {
                nodes: 4,
                processes: 3
            })
        ));
    }

    impl Clone for FloodMax {
        fn clone(&self) -> Self {
            FloodMax {
                value: self.value,
                rounds_left: self.rounds_left,
            }
        }
    }

    /// A buggy process that sends on an invalid port.
    #[derive(Debug)]
    struct BadPort;
    impl Process for BadPort {
        type Msg = u64;
        type Output = ();
        fn round(
            &mut self,
            ctx: &mut NodeCtx<'_>,
            _inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            out.send(ctx.degree + 5, 1);
        }
        fn output(&self) {}
    }

    #[test]
    fn invalid_port_is_an_error() {
        let g = generators::cycle(3).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| BadPort);
        assert!(matches!(net.step(), Err(CongestError::InvalidPort { .. })));
        // The failed round is dropped wholesale: nothing metered, and the
        // staging arena is clean, so stepping again errors the same way
        // instead of double-delivering a stale half-round.
        assert_eq!(net.metrics().messages, 0);
        assert_eq!(net.metrics().rounds, 0);
        assert!(matches!(net.step(), Err(CongestError::InvalidPort { .. })));
        assert_eq!(net.metrics().messages, 0);
    }

    /// A process that double-sends on port 0.
    #[derive(Debug)]
    struct DoubleSend;
    impl Process for DoubleSend {
        type Msg = u64;
        type Output = ();
        fn round(
            &mut self,
            ctx: &mut NodeCtx<'_>,
            _inbox: &[Incoming<u64>],
            out: &mut OutCtx<'_, u64>,
        ) {
            if ctx.round == 0 {
                out.send(0, 1);
                out.send(0, 2);
            }
        }
        fn output(&self) {}
    }

    #[test]
    fn multi_send_is_recorded_not_merged() {
        let g = generators::cycle(3).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| DoubleSend);
        net.step().unwrap();
        assert_eq!(net.metrics().multi_send_violations, 3);
        assert_eq!(net.metrics().messages, 6);
        assert!(!net.metrics().congest_clean());
    }

    #[test]
    fn trace_records_per_round_stats() {
        let g = generators::cycle(4).unwrap();
        let mut net = flood_network(&g, 2, 3);
        net.enable_trace();
        net.run_to_halt(100).unwrap();
        let trace = net.trace();
        assert_eq!(trace.len() as u64, net.metrics().rounds);
        let total: u64 = trace.iter().map(|t| t.messages).sum();
        assert_eq!(total, net.metrics().messages);
        assert_eq!(trace[0].round, 0);
        assert!(trace[0].max_bits > 0);
        // Without enable_trace the slice is empty.
        let mut quiet = flood_network(&g, 2, 3);
        quiet.run_to_halt(100).unwrap();
        assert!(quiet.trace().is_empty());
    }

    #[test]
    fn metrics_snapshots_are_point_in_time() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g, 1, 5);
        net.step().unwrap();
        let early = net.metrics_snapshot();
        net.run_to_halt(100).unwrap();
        let late = net.metrics_snapshot();
        assert_eq!(early.rounds, 1);
        assert!(late.messages > early.messages);
        assert_eq!(late, *net.metrics());
    }

    #[test]
    fn recycled_inboxes_preserve_delivery_semantics() {
        // Two flood networks, one stepped manually round by round, must
        // match a reference run exactly — the arena fast path may not
        // change what any process observes.
        let g = generators::random_regular(18, 4, 2).unwrap();
        let mut a = flood_network(&g, 42, 12);
        let mut b = flood_network(&g, 42, 12);
        a.run_to_halt(100).unwrap();
        while !b.all_halted() {
            b.step().unwrap();
        }
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn run_until_predicate() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 100);
        let status = net.run_until(1000, |n| n.round() >= 5).unwrap();
        assert_eq!(status, RunStatus::PredicateMet);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn run_for_exact_rounds() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 100);
        let status = net.run_for(7).unwrap();
        assert_eq!(status, RunStatus::RoundLimit);
        assert_eq!(net.round(), 7);
    }

    #[test]
    fn round_limit_status() {
        let g = generators::cycle(8).unwrap();
        let mut net = flood_network(&g, 3, 1000);
        let status = net.run_to_halt(4).unwrap();
        assert_eq!(status, RunStatus::RoundLimit);
    }

    #[test]
    fn active_set_tracks_halts() {
        let g = generators::cycle(6).unwrap();
        let mut net = flood_network(&g, 1, 2);
        assert_eq!(net.active_count(), 6);
        assert!(!net.all_halted());
        net.run_to_halt(100).unwrap();
        assert_eq!(net.active_count(), 0);
        assert!(net.all_halted());
    }

    #[test]
    fn messages_are_delivered_through_correct_ports() {
        // Directed probe: node sends its port index; receiver checks the
        // arrival count matches its degree.
        #[derive(Debug)]
        struct PortProbe {
            ok: bool,
            sent: bool,
        }
        impl Process for PortProbe {
            type Msg = u64;
            type Output = bool;
            fn round(
                &mut self,
                ctx: &mut NodeCtx<'_>,
                inbox: &[Incoming<u64>],
                out: &mut OutCtx<'_, u64>,
            ) {
                if ctx.round == 1 {
                    self.ok = inbox.len() == ctx.degree;
                }
                if !self.sent {
                    self.sent = true;
                    for p in 0..ctx.degree {
                        out.send(p, p as u64);
                    }
                }
            }
            fn is_halted(&self) -> bool {
                self.sent
            }
            fn output(&self) -> bool {
                self.ok
            }
        }
        let g = generators::complete(5).unwrap();
        let mut net = Network::from_fn(&g, 0, 64, |_, _| PortProbe {
            ok: false,
            sent: false,
        });
        // Round 0: everyone sends; round 1 would check, but all halt after
        // sending. Drive one step manually and verify via metrics.
        net.step().unwrap();
        assert_eq!(net.metrics().messages, 5 * 4);
    }

    #[test]
    fn inbox_arrival_order_is_sender_then_send_order() {
        // Node 0 of a path receives from node 1 only; on a cycle every
        // node receives from both neighbors, lower sender id first.
        #[derive(Debug)]
        struct Tag {
            id: u64,
            seen: Vec<u64>,
            done: bool,
        }
        impl Process for Tag {
            type Msg = u64;
            type Output = Vec<u64>;
            fn round(
                &mut self,
                ctx: &mut NodeCtx<'_>,
                inbox: &[Incoming<u64>],
                out: &mut OutCtx<'_, u64>,
            ) {
                self.seen.extend(inbox.iter().map(|m| m.msg));
                if ctx.round == 0 {
                    out.broadcast(self.id);
                } else {
                    self.done = true;
                }
            }
            fn is_halted(&self) -> bool {
                self.done
            }
            fn output(&self) -> Vec<u64> {
                self.seen.clone()
            }
        }
        let g = generators::cycle(4).unwrap();
        let mut id = 0u64;
        let mut net = Network::from_fn(&g, 0, 64, |_, _| {
            let p = Tag {
                id,
                seen: Vec::new(),
                done: false,
            };
            id += 1;
            p
        });
        net.run_to_halt(10).unwrap();
        // Each node heard both neighbors, ordered by sender id.
        for (v, seen) in net.outputs().into_iter().enumerate() {
            let mut expected: Vec<u64> = vec![((v + 3) % 4) as u64, ((v + 1) % 4) as u64];
            expected.sort_unstable();
            assert_eq!(seen, expected, "node {v}");
        }
    }
}
