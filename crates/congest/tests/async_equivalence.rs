//! Async engine ↔ arena engine equivalence — the oracle suite.
//!
//! At **unit latency with zero faults** the event-driven engine
//! (`AsyncNetwork`) must be observationally identical to the arena engine
//! (`Network`): for the same graph and seed, outputs, metrics, and
//! per-round traces match byte for byte — no process can tell which
//! engine is driving it. This is the load-bearing contract that lets the
//! battle-tested synchronous engine serve as the correctness oracle for
//! the asynchronous one; every fault/latency feature then deviates from a
//! pinned baseline rather than from hope. The suite mirrors the
//! arena↔reference suite (`equivalence.rs`) protocol for protocol:
//! seeded random-regular and torus graphs, the implicit-topology backend,
//! staggered mid-run halts, multi-sends, congest-oversized payloads, and
//! the invalid-port drop-the-round path.

use ale_congest::{
    AsyncNetwork, CongestError, Incoming, Metrics, Network, NodeCtx, OutCtx, Process, RunStatus,
};
use ale_graph::{Graph, ImplicitTopology, Topology};
use rand::Rng;

/// A deliberately messy protocol that exercises every metering path:
/// random fan-out (including silence), double-sends on port 0, payloads
/// crossing the CONGEST budget, staggered mid-run halts, and RNG
/// consumption that depends on received messages — so any delivery-order
/// difference snowballs into divergent outputs within a round or two.
#[derive(Debug, Clone)]
struct Chaos {
    acc: u64,
    halt_round: u64,
    done: bool,
}

impl Process for Chaos {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            // Arrival order and port tags feed the accumulator, so the
            // engines must agree on both.
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(m.msg)
                .wrapping_add(m.port as u64);
        }
        if ctx.round >= self.halt_round {
            self.done = true;
            return;
        }
        // One RNG draw per received message: delivery differences desync
        // the stream immediately.
        for _ in 0..inbox.len() {
            self.acc ^= ctx.rng.gen::<u64>() >> 32;
        }
        let fanout = ctx.rng.gen_range(0..=ctx.degree);
        for _ in 0..fanout {
            let port = ctx.rng.gen_range(0..ctx.degree);
            // Mix small and budget-busting payloads.
            let wide: bool = ctx.rng.gen_bool(0.2);
            let msg = if wide {
                self.acc | (1 << 60)
            } else {
                self.acc & 0xFF
            };
            out.send(port, msg);
            if port == 0 && ctx.rng.gen_bool(0.3) {
                out.send(0, msg ^ 1); // multi-send violation, delivered anyway
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.acc
    }
}

fn chaos_factory(seed_mix: u64) -> impl FnMut(usize, &mut rand::rngs::StdRng) -> Chaos {
    move |_deg, rng| Chaos {
        acc: rng.gen(),
        halt_round: 2 + (rng.gen::<u64>() ^ seed_mix) % 14, // staggered halts
        done: false,
    }
}

/// Lockstep-steps an arena run and a default-config (unit latency, zero
/// faults) async run, comparing metrics snapshots after every round so a
/// divergence is pinned to the exact round it first appears in.
fn assert_equivalent_run(graph: &Graph, seed: u64, budget: usize, rounds: u64) {
    let mut arena = Network::from_fn(graph, seed, budget, chaos_factory(seed));
    let mut evented = AsyncNetwork::from_fn(graph, seed, budget, chaos_factory(seed));
    arena.enable_trace();
    evented.enable_trace();

    let mut r = 0u64;
    while !arena.all_halted() && r < rounds {
        arena.step().expect("arena step");
        evented.step().expect("async step");
        assert_eq!(
            arena.metrics_snapshot(),
            evented.metrics_snapshot(),
            "metrics diverged at round {r}"
        );
        r += 1;
    }
    assert_eq!(arena.all_halted(), evented.all_halted());
    assert_eq!(arena.round(), evented.round());
    assert_eq!(arena.outputs(), evented.outputs(), "outputs diverged");
    assert_eq!(arena.trace(), evented.trace(), "traces diverged");
    // Nothing may linger in the event queue once all senders halted: at
    // unit latency every message was deliverable one tick after its send.
    if evented.all_halted() {
        evented.step().expect("drain tick");
        assert_eq!(evented.in_flight(), 0, "stale events in the queue");
    }
}

#[test]
fn equivalent_on_random_regular_graphs() {
    for (n, d, gseed) in [(20usize, 3usize, 5u64), (40, 4, 2), (64, 4, 3)] {
        let g = Topology::RandomRegular { n, d }.build(gseed).unwrap();
        for seed in 0..8 {
            assert_equivalent_run(&g, seed, 8, 64);
        }
    }
}

#[test]
fn equivalent_on_torus_graphs() {
    for (rows, cols) in [(4usize, 5usize), (6, 6)] {
        let g = Topology::Grid2d {
            rows,
            cols,
            torus: true,
        }
        .build(0)
        .unwrap();
        for seed in 0..8 {
            assert_equivalent_run(&g, seed, 8, 64);
        }
    }
}

#[test]
fn equivalent_on_an_implicit_torus() {
    // The O(1)-memory computed-neighbor backend must be invisible to the
    // engines: an async run on an implicit torus matches an arena run on
    // the *explicit* twin of the same torus, trace for trace.
    let implicit = Graph::from_implicit(ImplicitTopology::Torus { rows: 5, cols: 7 }).unwrap();
    assert!(implicit.is_implicit());
    let explicit = ale_graph::generators::grid2d(5, 7, true).unwrap();
    for seed in 0..8 {
        let mut evented = AsyncNetwork::from_fn(&implicit, seed, 8, chaos_factory(seed));
        let mut arena = Network::from_fn(&explicit, seed, 8, chaos_factory(seed));
        evented.enable_trace();
        arena.enable_trace();
        while !arena.all_halted() {
            arena.step().expect("arena step");
            evented.step().expect("async step");
        }
        assert!(evented.all_halted());
        assert_eq!(arena.outputs(), evented.outputs(), "outputs diverged");
        assert_eq!(arena.metrics_snapshot(), evented.metrics_snapshot());
        assert_eq!(arena.trace(), evented.trace(), "traces diverged");
    }
}

#[test]
fn equivalent_with_tight_congest_budget() {
    // Budget 2 forces heavy oversize charging; both engines must charge
    // identical serialized CONGEST rounds.
    let g = Topology::RandomRegular { n: 24, d: 3 }.build(7).unwrap();
    for seed in 0..6 {
        assert_equivalent_run(&g, seed, 2, 48);
    }
}

/// Sends on a port the node does not have once `round == when`, on nodes
/// where `trigger` is set; otherwise behaves like a quiet gossip.
#[derive(Debug)]
struct Saboteur {
    trigger: bool,
    when: u64,
    sum: u64,
}

impl Process for Saboteur {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        self.sum += inbox.iter().map(|m| m.msg).sum::<u64>();
        if self.trigger && ctx.round == self.when {
            out.send(0, 1); // legal send before the bug: dropped with the tick
            out.send(0, 2); // multi-send: recorded before the failure, sticks
            out.send(ctx.degree + 3, 9); // the bug
            out.send(0, 3); // after the failure: ignored
            return;
        }
        out.broadcast(self.sum & 0x3F);
    }

    fn output(&self) -> u64 {
        self.sum
    }
}

#[test]
fn invalid_port_drop_the_round_is_equivalent() {
    let g = Topology::RandomRegular { n: 12, d: 3 }.build(4).unwrap();
    let make = |trigger_node: usize| {
        let mut v = 0usize;
        move |_deg: usize, _rng: &mut rand::rngs::StdRng| {
            let p = Saboteur {
                trigger: v == trigger_node,
                when: 3,
                sum: 1,
            };
            v += 1;
            p
        }
    };
    for trigger_node in [0usize, 5, 11] {
        let mut arena = Network::from_fn(&g, 9, 8, make(trigger_node));
        let mut evented = AsyncNetwork::from_fn(&g, 9, 8, make(trigger_node));
        arena.enable_trace();
        evented.enable_trace();
        for _ in 0..3 {
            arena.step().unwrap();
            evented.step().unwrap();
        }
        let ae = arena.step().unwrap_err();
        let ee = evented.step().unwrap_err();
        assert_eq!(ae, ee, "same InvalidPort error");
        assert!(matches!(ae, CongestError::InvalidPort { .. }));
        // The failed tick delivered and metered nothing; multi-send
        // violations recorded before the failure stick in both engines.
        assert_eq!(arena.metrics_snapshot(), evented.metrics_snapshot());
        assert_eq!(arena.round(), evented.round());
        assert_eq!(arena.round(), 3, "failed round must not advance the clock");
        // Inboxes were preserved: the next step re-runs the same round and
        // fails identically (processes re-observe their inboxes but RNGs
        // advanced — equivalently in both engines).
        let ae2 = arena.step().unwrap_err();
        let ee2 = evented.step().unwrap_err();
        assert_eq!(ae2, ee2);
        assert_eq!(arena.metrics_snapshot(), evented.metrics_snapshot());
        assert_eq!(arena.outputs(), evented.outputs());
        assert_eq!(arena.trace(), evented.trace());
    }
}

/// Every-round all-port gossip with no halts: the steady-state dense case.
#[derive(Debug, Clone)]
struct Dense(u64);

impl Process for Dense {
    type Msg = u64;
    type Output = u64;

    fn round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<u64>],
        out: &mut OutCtx<'_, u64>,
    ) {
        for m in inbox {
            self.0 = self.0.rotate_left(1) ^ m.msg;
        }
        out.broadcast(self.0);
    }

    fn output(&self) -> u64 {
        self.0
    }
}

#[test]
fn equivalent_dense_never_halting() {
    let g = Topology::Grid2d {
        rows: 5,
        cols: 5,
        torus: true,
    }
    .build(0)
    .unwrap();
    let mut arena = Network::from_fn(&g, 5, 64, |_d, rng| Dense(rng.gen()));
    let mut evented = AsyncNetwork::from_fn(&g, 5, 64, |_d, rng| Dense(rng.gen()));
    arena.enable_trace();
    evented.enable_trace();
    let sa = arena.run_for(40).unwrap();
    let se = evented.run_for(40).unwrap();
    assert_eq!(sa, RunStatus::RoundLimit);
    assert_eq!(se, RunStatus::RoundLimit);
    assert_eq!(arena.outputs(), evented.outputs());
    assert_eq!(arena.metrics_snapshot(), evented.metrics_snapshot());
    assert_eq!(arena.trace(), evented.trace());
}

#[test]
fn metrics_are_value_identical_not_just_equal() {
    // Belt and braces: compare the Metrics field by field (Metrics is
    // Copy + PartialEq, but spell the fields out so a future field added
    // without async-equivalence coverage shows up here as a compile or
    // test failure).
    let g = Topology::RandomRegular { n: 30, d: 4 }.build(11).unwrap();
    let mut arena = Network::from_fn(&g, 13, 6, chaos_factory(13));
    let mut evented = AsyncNetwork::from_fn(&g, 13, 6, chaos_factory(13));
    while !arena.all_halted() {
        arena.step().unwrap();
        evented.step().unwrap();
    }
    let a: Metrics = arena.metrics_snapshot();
    let e: Metrics = evented.metrics_snapshot();
    assert_eq!(a.rounds, e.rounds);
    assert_eq!(a.congest_rounds, e.congest_rounds);
    assert_eq!(a.messages, e.messages);
    assert_eq!(a.bits, e.bits);
    assert_eq!(a.budget_bits, e.budget_bits);
    assert_eq!(a.oversize_messages, e.oversize_messages);
    assert_eq!(a.max_message_bits, e.max_message_bits);
    assert_eq!(a.multi_send_violations, e.multi_send_violations);
    assert_eq!(a.delivered, e.delivered);
    assert_eq!(a.dropped, e.dropped);
    assert_eq!(a.duplicated, e.duplicated);
    // Fault-free runs deliver exactly what they send, on both engines.
    assert_eq!(e.delivered, e.messages);
    assert_eq!((e.dropped, e.duplicated), (0, 0));
}
