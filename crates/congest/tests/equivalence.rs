//! Arena engine ↔ reference engine equivalence.
//!
//! The flat-arena engine (`Network`) must be observationally identical to
//! the pre-arena reference engine (`ReferenceNetwork`): for the same graph
//! and seed, outputs, metrics, and per-round traces match byte for byte —
//! no process can tell which engine is driving it. These tests pin that on
//! seeded random-regular and torus graphs, through mid-run halts,
//! multi-sends, congest-oversized payloads, and the invalid-port
//! drop-the-round path.

use ale_congest::{
    CongestError, Incoming, Metrics, Network, NodeCtx, OutCtx, Process, ReferenceNetwork, RunStatus,
};
use ale_graph::{Graph, ImplicitTopology, Topology};
use rand::Rng;

/// A deliberately messy protocol that exercises every metering path:
///
/// * random per-round fan-out (including silence),
/// * occasional double-sends on port 0 (multi-send violations),
/// * payload sizes crossing the CONGEST budget (oversize charging),
/// * random mid-run halts, staggered per node,
/// * RNG consumption that depends on received messages (so any delivery
///   difference snowballs into divergent outputs within a round or two).
#[derive(Debug, Clone)]
struct Chaos {
    acc: u64,
    halt_round: u64,
    done: bool,
}

impl Process for Chaos {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            // Arrival order and port tags feed the accumulator, so the
            // engines must agree on both.
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(m.msg)
                .wrapping_add(m.port as u64);
        }
        if ctx.round >= self.halt_round {
            self.done = true;
            return;
        }
        // One RNG draw per received message: delivery differences desync
        // the stream immediately.
        for _ in 0..inbox.len() {
            self.acc ^= ctx.rng.gen::<u64>() >> 32;
        }
        let fanout = ctx.rng.gen_range(0..=ctx.degree);
        for _ in 0..fanout {
            let port = ctx.rng.gen_range(0..ctx.degree);
            // Mix small and budget-busting payloads.
            let wide: bool = ctx.rng.gen_bool(0.2);
            let msg = if wide {
                self.acc | (1 << 60)
            } else {
                self.acc & 0xFF
            };
            out.send(port, msg);
            if port == 0 && ctx.rng.gen_bool(0.3) {
                out.send(0, msg ^ 1); // multi-send violation, delivered anyway
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.acc
    }
}

fn chaos_factory(seed_mix: u64) -> impl FnMut(usize, &mut rand::rngs::StdRng) -> Chaos {
    move |_deg, rng| Chaos {
        acc: rng.gen(),
        halt_round: 2 + (rng.gen::<u64>() ^ seed_mix) % 14, // staggered halts
        done: false,
    }
}

fn assert_equivalent_run(graph: &Graph, seed: u64, budget: usize, rounds: u64) {
    let mut arena = Network::from_fn(graph, seed, budget, chaos_factory(seed));
    let mut reference = ReferenceNetwork::from_fn(graph, seed, budget, chaos_factory(seed));
    arena.enable_trace();
    reference.enable_trace();

    // Step in lockstep, comparing metrics snapshots after every round so a
    // divergence is pinned to the exact round it first appears in.
    let mut r = 0u64;
    while !arena.all_halted() && r < rounds {
        arena.step().expect("arena step");
        reference.step().expect("reference step");
        assert_eq!(
            arena.metrics_snapshot(),
            reference.metrics_snapshot(),
            "metrics diverged at round {r}"
        );
        r += 1;
    }
    assert_eq!(arena.all_halted(), reference.all_halted());
    assert_eq!(arena.round(), reference.round());
    assert_eq!(arena.outputs(), reference.outputs(), "outputs diverged");
    assert_eq!(arena.trace(), reference.trace(), "traces diverged");
}

#[test]
fn equivalent_on_random_regular_graphs() {
    for (n, d, gseed) in [(20usize, 3usize, 5u64), (40, 4, 2), (64, 4, 3)] {
        let g = Topology::RandomRegular { n, d }.build(gseed).unwrap();
        for seed in 0..8 {
            assert_equivalent_run(&g, seed, 8, 64);
        }
    }
}

#[test]
fn equivalent_on_torus_graphs() {
    for (rows, cols) in [(4usize, 5usize), (6, 6)] {
        let g = Topology::Grid2d {
            rows,
            cols,
            torus: true,
        }
        .build(0)
        .unwrap();
        for seed in 0..8 {
            assert_equivalent_run(&g, seed, 8, 64);
        }
    }
}

#[test]
fn equivalent_on_an_implicit_torus() {
    // The O(1)-memory computed-neighbor backend must be invisible to the
    // engines: an arena run on an implicit torus matches a reference run
    // on the *explicit* twin of the same torus, trace for trace — so the
    // engines can tell neither the backends nor each other apart.
    let implicit = Graph::from_implicit(ImplicitTopology::Torus { rows: 5, cols: 7 }).unwrap();
    assert!(implicit.is_implicit());
    let explicit = ale_graph::generators::grid2d(5, 7, true).unwrap();
    for seed in 0..8 {
        let mut arena = Network::from_fn(&implicit, seed, 8, chaos_factory(seed));
        let mut reference = ReferenceNetwork::from_fn(&explicit, seed, 8, chaos_factory(seed));
        arena.enable_trace();
        reference.enable_trace();
        while !arena.all_halted() {
            arena.step().expect("arena step");
            reference.step().expect("reference step");
        }
        assert!(reference.all_halted());
        assert_eq!(arena.outputs(), reference.outputs(), "outputs diverged");
        assert_eq!(arena.metrics_snapshot(), reference.metrics_snapshot());
        assert_eq!(arena.trace(), reference.trace(), "traces diverged");
    }
}

#[test]
fn equivalent_with_tight_congest_budget() {
    // Budget 2 forces heavy oversize charging; both engines must charge
    // identical serialized CONGEST rounds.
    let g = Topology::RandomRegular { n: 24, d: 3 }.build(7).unwrap();
    for seed in 0..6 {
        assert_equivalent_run(&g, seed, 2, 48);
    }
}

/// Sends on a port the node does not have once `round == when`, on node
/// draws where `trigger` is set; otherwise behaves like a quiet gossip.
#[derive(Debug)]
struct Saboteur {
    trigger: bool,
    when: u64,
    sum: u64,
}

impl Process for Saboteur {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        self.sum += inbox.iter().map(|m| m.msg).sum::<u64>();
        if self.trigger && ctx.round == self.when {
            out.send(0, 1); // legal send before the bug: dropped with the round
            out.send(0, 2); // multi-send: recorded before the failure, sticks
            out.send(ctx.degree + 3, 9); // the bug
            out.send(0, 3); // after the failure: ignored
            return;
        }
        out.broadcast(self.sum & 0x3F);
    }

    fn output(&self) -> u64 {
        self.sum
    }
}

#[test]
fn invalid_port_drop_the_round_is_equivalent() {
    let g = Topology::RandomRegular { n: 12, d: 3 }.build(4).unwrap();
    let make = |trigger_node: usize| {
        let mut v = 0usize;
        move |_deg: usize, _rng: &mut rand::rngs::StdRng| {
            let p = Saboteur {
                trigger: v == trigger_node,
                when: 3,
                sum: 1,
            };
            v += 1;
            p
        }
    };
    for trigger_node in [0usize, 5, 11] {
        let mut arena = Network::from_fn(&g, 9, 8, make(trigger_node));
        let mut reference = ReferenceNetwork::from_fn(&g, 9, 8, make(trigger_node));
        arena.enable_trace();
        reference.enable_trace();
        for _ in 0..3 {
            arena.step().unwrap();
            reference.step().unwrap();
        }
        let ae = arena.step().unwrap_err();
        let re = reference.step().unwrap_err();
        assert_eq!(ae, re, "same InvalidPort error");
        assert!(matches!(ae, CongestError::InvalidPort { .. }));
        // The failed round delivered and metered nothing; multi-send
        // violations recorded before the failure stick in both engines.
        assert_eq!(arena.metrics_snapshot(), reference.metrics_snapshot());
        assert_eq!(arena.round(), reference.round());
        assert_eq!(arena.round(), 3, "failed round must not advance the clock");
        // Inboxes were preserved: the next step re-runs the same round and
        // fails identically (processes re-observe their inboxes but RNGs
        // advanced — equivalently in both engines).
        let ae2 = arena.step().unwrap_err();
        let re2 = reference.step().unwrap_err();
        assert_eq!(ae2, re2);
        assert_eq!(arena.metrics_snapshot(), reference.metrics_snapshot());
        assert_eq!(arena.outputs(), reference.outputs());
        assert_eq!(arena.trace(), reference.trace());
    }
}

/// Every-round all-port gossip with no halts: the steady-state dense case.
#[derive(Debug, Clone)]
struct Dense(u64);

impl Process for Dense {
    type Msg = u64;
    type Output = u64;

    fn round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<u64>],
        out: &mut OutCtx<'_, u64>,
    ) {
        for m in inbox {
            self.0 = self.0.rotate_left(1) ^ m.msg;
        }
        out.broadcast(self.0);
    }

    fn output(&self) -> u64 {
        self.0
    }
}

#[test]
fn equivalent_dense_never_halting() {
    let g = Topology::Grid2d {
        rows: 5,
        cols: 5,
        torus: true,
    }
    .build(0)
    .unwrap();
    let mut arena = Network::from_fn(&g, 5, 64, |_d, rng| Dense(rng.gen()));
    let mut reference = ReferenceNetwork::from_fn(&g, 5, 64, |_d, rng| Dense(rng.gen()));
    arena.enable_trace();
    reference.enable_trace();
    let sa = arena.run_for(40).unwrap();
    let sr = reference.run_for(40).unwrap();
    assert_eq!(sa, RunStatus::RoundLimit);
    assert_eq!(sr, RunStatus::RoundLimit);
    assert_eq!(arena.outputs(), reference.outputs());
    assert_eq!(arena.metrics_snapshot(), reference.metrics_snapshot());
    assert_eq!(arena.trace(), reference.trace());
}

#[test]
fn metrics_are_value_identical_not_just_equal() {
    // Belt and braces: compare the Metrics field by field (Metrics is
    // Copy + PartialEq, but spell the fields out so a future field added
    // without equivalence coverage shows up here as a compile or test
    // failure).
    let g = Topology::RandomRegular { n: 30, d: 4 }.build(11).unwrap();
    let mut arena = Network::from_fn(&g, 13, 6, chaos_factory(13));
    let mut reference = ReferenceNetwork::from_fn(&g, 13, 6, chaos_factory(13));
    while !arena.all_halted() {
        arena.step().unwrap();
        reference.step().unwrap();
    }
    let a: Metrics = arena.metrics_snapshot();
    let r: Metrics = reference.metrics_snapshot();
    assert_eq!(a.rounds, r.rounds);
    assert_eq!(a.congest_rounds, r.congest_rounds);
    assert_eq!(a.messages, r.messages);
    assert_eq!(a.bits, r.bits);
    assert_eq!(a.budget_bits, r.budget_bits);
    assert_eq!(a.oversize_messages, r.oversize_messages);
    assert_eq!(a.max_message_bits, r.max_message_bits);
    assert_eq!(a.multi_send_violations, r.multi_send_violations);
}
