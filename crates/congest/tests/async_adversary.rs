//! Property tests for the asynchronous adversary.
//!
//! Two contracts:
//!
//! 1. **Positional determinism** — every fault decision (drop, duplicate,
//!    crash schedule, latency draw) is a pure function of the trial seed
//!    and the execution config. Trial seeds in the lab are themselves a
//!    pure function of `(master seed, grid position, seed index)`
//!    (`ale-lab`'s `derive_seed`), so a sweep's fault schedules are
//!    independent of worker count and execution order; these tests pin
//!    the engine half of that chain by deriving seeds positionally and
//!    running the trials in deliberately different orders.
//! 2. **Counter reconciliation** — `delivered`, `dropped`, `duplicated`
//!    and `messages` always reconcile: every sent message is decided
//!    exactly once at send time, so `delivered = messages − dropped +
//!    duplicated` holds for *any* configuration, graph, and seed.

use ale_congest::{
    AsyncNetwork, ExecConfig, FaultSpec, Incoming, LatencyDist, Metrics, NodeCtx, OutCtx, Process,
    RoundTrace,
};
use ale_graph::Topology;
use rand::Rng;

/// Gossips random payloads for a few rounds, mixing received messages
/// into its accumulator — enough traffic to exercise every fault path,
/// with outputs sensitive to exactly which messages arrive and when.
#[derive(Debug)]
struct Gossip {
    acc: u64,
    rounds_left: u64,
}

impl Process for Gossip {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            self.acc = self.acc.rotate_left(3) ^ m.msg ^ (m.port as u64);
        }
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let fanout = ctx.rng.gen_range(0..=ctx.degree);
        for p in 0..fanout {
            out.send(p, self.acc & 0xFFFF);
        }
    }

    fn is_halted(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> u64 {
        self.acc
    }
}

/// The same positional mix `ale-lab`'s `derive_seed` uses (splitmix64),
/// reimplemented here because the dependency points the other way.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn derive_seed(master: u64, stream: u64, index: u64) -> u64 {
    splitmix64(splitmix64(master ^ splitmix64(stream.wrapping_add(0x5851_F42D_4C95_7F2D))) ^ index)
}

/// One complete trial under `config`, reduced to everything observable.
fn run_trial(
    topo: &Topology,
    gseed: u64,
    seed: u64,
    config: ExecConfig,
) -> (Vec<u64>, Metrics, Vec<RoundTrace>) {
    let g = topo.build(gseed).expect("graph");
    let mut net = AsyncNetwork::from_fn_with(&g, seed, 16, config, |_d, rng| Gossip {
        acc: rng.gen(),
        rounds_left: 8,
    })
    .expect("valid config");
    net.enable_trace();
    net.run_to_halt(64).expect("run");
    (net.outputs(), net.metrics_snapshot(), net.trace().to_vec())
}

fn adversary_configs() -> Vec<ExecConfig> {
    vec![
        ExecConfig::default(),
        ExecConfig {
            faults: FaultSpec {
                drop: 0.25,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        },
        ExecConfig {
            faults: FaultSpec {
                duplicate: 0.4,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        },
        ExecConfig {
            latency: LatencyDist::Uniform { min: 1, max: 4 },
            faults: FaultSpec {
                drop: 0.1,
                duplicate: 0.1,
                crash: 0.2,
                crash_window: 4,
            },
        },
        ExecConfig {
            latency: LatencyDist::Geometric { p: 0.6 },
            faults: FaultSpec {
                drop: 0.5,
                duplicate: 0.5,
                ..FaultSpec::default()
            },
        },
    ]
}

#[test]
fn fault_injection_is_deterministic_per_positional_seed() {
    // A 3-point × 2-seed "grid": trial seeds derive positionally from the
    // master exactly like a fleet shard would compute them.
    let master = 0xC0FF_EE00_D15E_A5E5u64;
    let topo = Topology::RandomRegular { n: 24, d: 4 };
    let config = adversary_configs()[3]; // the everything-on adversary
    let positions: Vec<(u64, u64)> = (0..3u64)
        .flat_map(|stream| (0..2u64).map(move |idx| (stream, idx)))
        .collect();

    // "One worker": run the trials in grid order.
    let forward: Vec<_> = positions
        .iter()
        .map(|&(s, i)| run_trial(&topo, 1, derive_seed(master, s, i), config))
        .collect();
    // "Many workers": the same trials, scheduled in reverse — every
    // result must be byte-identical because nothing but the derived seed
    // feeds the adversary streams.
    let reversed: Vec<_> = positions
        .iter()
        .rev()
        .map(|&(s, i)| run_trial(&topo, 1, derive_seed(master, s, i), config))
        .collect();
    for (f, r) in forward.iter().zip(reversed.iter().rev()) {
        assert_eq!(f, r, "trial result depends on execution order");
    }
    // And every position is genuinely its own experiment.
    for (a, b) in forward.iter().zip(forward.iter().skip(1)) {
        assert_ne!(a.1, b.1, "adjacent grid positions share a fault schedule");
    }
}

#[test]
fn rerunning_a_seed_reproduces_the_fault_schedule_bit_for_bit() {
    let topo = Topology::Grid2d {
        rows: 5,
        cols: 5,
        torus: true,
    };
    for config in adversary_configs() {
        for seed in 0..4 {
            let first = run_trial(&topo, 0, seed, config);
            let second = run_trial(&topo, 0, seed, config);
            assert_eq!(first, second, "seed {seed} under {config:?}");
        }
    }
}

#[test]
fn counters_always_reconcile_with_sent_counts() {
    let topos = [
        Topology::Complete { n: 10 },
        Topology::RandomRegular { n: 32, d: 4 },
        Topology::Cycle { n: 17 },
    ];
    for topo in &topos {
        for config in adversary_configs() {
            for seed in 0..6 {
                let (_, m, _) = run_trial(topo, 2, seed, config);
                assert_eq!(
                    m.delivered,
                    m.messages - m.dropped + m.duplicated,
                    "{topo} seed {seed} under {config:?}"
                );
                assert!(m.dropped <= m.messages);
                if config.faults.is_zero() {
                    assert_eq!(m.delivered, m.messages);
                    assert_eq!((m.dropped, m.duplicated), (0, 0));
                }
                // Faults are the environment's doing, never the
                // protocol's: they must not read as CONGEST violations.
                assert_eq!(m.multi_send_violations, 0, "{topo} seed {seed}");
            }
        }
    }
}

#[test]
fn crashes_only_remove_work() {
    // A crash silences a node; it cannot conjure messages. Compare each
    // faulty run against its fault-free twin (same seed, same node RNGs).
    let topo = Topology::Complete { n: 16 };
    for seed in 0..6 {
        let (_, clean, _) = run_trial(&topo, 3, seed, ExecConfig::default());
        let crashy = ExecConfig {
            faults: FaultSpec {
                crash: 0.4,
                crash_window: 3,
                ..FaultSpec::default()
            },
            ..ExecConfig::default()
        };
        let (_, crashed, _) = run_trial(&topo, 3, seed, crashy);
        assert!(crashed.messages <= clean.messages, "seed {seed}");
        assert_eq!((crashed.dropped, crashed.duplicated), (0, 0));
        assert_eq!(crashed.delivered, crashed.messages);
    }
    // With the window spanning every tick and certainty, nobody speaks.
    let total = ExecConfig {
        faults: FaultSpec {
            crash: 1.0,
            crash_window: 1,
            ..FaultSpec::default()
        },
        ..ExecConfig::default()
    };
    let (_, m, _) = run_trial(&topo, 3, 0, total);
    assert_eq!(m.messages, 0, "a fully crashed network is silent");
}
