//! Criterion bench: diffusion steps of the `Avg` procedure (E-L34 unit).

use ale_graph::Topology;
use ale_markov::MarkovChain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_diffusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion_step");
    for n in [64usize, 256, 1024] {
        let graph = Topology::RandomRegular { n, d: 4 }.build(1).expect("graph");
        let chain = MarkovChain::diffusion(&graph.adjacency(), 1.0 / 64.0).expect("chain");
        let pot: Vec<f64> = (0..n).map(|i| if i % 7 == 0 { 0.0 } else { 1.0 }).collect();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| chain.step(&pot).expect("step"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diffusion);
criterion_main!(benches);
