//! Criterion bench: diffusion steps of the `Avg` procedure (E-L34 unit),
//! dense vs sparse backend.
//!
//! The dense `Matrix` step is `O(n²)`; the CSR step is `O(n + 2m)` — on a
//! 4-regular torus that is ~5n entries, so the per-step gap grows linearly
//! in `n`. `torus:100x100` (n = 10 000) is the headline pair: the dense
//! matrix alone is 800 MB and a step touches all of it, while the sparse
//! step streams ~50 000 entries — expect several orders of magnitude, and
//! at minimum the 10× the ISSUE gates on.

use ale_graph::{transition, Topology};
use ale_markov::MarkovChain;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ALPHA: f64 = 1.0 / 64.0;

fn torus(side: usize) -> Topology {
    Topology::Grid2d {
        rows: side,
        cols: side,
        torus: true,
    }
}

fn potential(n: usize) -> Vec<f64> {
    (0..n).map(|i| if i % 7 == 0 { 0.0 } else { 1.0 }).collect()
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion_step_dense");
    for side in [8usize, 32, 100] {
        let graph = torus(side).build(1).expect("graph");
        let n = graph.n();
        let chain = MarkovChain::diffusion(&graph.adjacency(), ALPHA).expect("chain");
        let pot = potential(n);
        let mut out = vec![0.0; n];
        group.bench_function(
            BenchmarkId::from_parameter(format!("torus:{side}x{side}")),
            |b| {
                b.iter(|| chain.step_into(&pot, &mut out).expect("step"));
            },
        );
    }
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion_step_sparse");
    for side in [8usize, 32, 100, 200] {
        let graph = torus(side).build(1).expect("graph");
        let n = graph.n();
        let chain = transition::diffusion_chain(&graph, ALPHA).expect("chain");
        let pot = potential(n);
        let mut out = vec![0.0; n];
        group.bench_function(
            BenchmarkId::from_parameter(format!("torus:{side}x{side}")),
            |b| {
                b.iter(|| chain.step_into(&pot, &mut out).expect("step"));
            },
        );
    }
    group.finish();
}

fn bench_random_regular(c: &mut Criterion) {
    // The legacy expander sweep, kept on both backends for continuity.
    let mut group = c.benchmark_group("diffusion_step_rregular");
    for n in [256usize, 1024, 16_384] {
        let graph = Topology::RandomRegular { n, d: 4 }.build(1).expect("graph");
        let chain = transition::diffusion_chain(&graph, ALPHA).expect("chain");
        let pot = potential(n);
        let mut out = vec![0.0; n];
        group.bench_function(BenchmarkId::from_parameter(format!("sparse/{n}")), |b| {
            b.iter(|| chain.step_into(&pot, &mut out).expect("step"));
        });
        if n <= 1024 {
            let dense = MarkovChain::diffusion(&graph.adjacency(), ALPHA).expect("chain");
            group.bench_function(BenchmarkId::from_parameter(format!("dense/{n}")), |b| {
                b.iter(|| dense.step_into(&pot, &mut out).expect("step"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_sparse, bench_random_regular);
criterion_main!(benches);
