//! Criterion bench: revocable elections to stabilization (E-T1c workload).

use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_revocable(c: &mut Criterion) {
    let mut group = c.benchmark_group("revocable_election");
    group.sample_size(10);

    // Scaled blind mode on small graphs.
    for topo in [
        Topology::Complete { n: 4 },
        Topology::Complete { n: 8 },
        Topology::Cycle { n: 6 },
    ] {
        let graph = topo.build(0).expect("graph");
        let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
        group.bench_function(BenchmarkId::new("scaled_blind", topo), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_revocable(&graph, &params, seed, 16).expect("run")
            });
        });
    }

    // Theorem 3 variant with known isoperimetric number.
    let graph = Topology::Complete { n: 8 }.build(0).expect("graph");
    let params = RevocableParams::paper_with_ig(1.0, 0.2, 4.0).with_scales(1.0, 0.25, 1.0);
    group.bench_function("thm3_exact_r/complete(n=8)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_revocable(&graph, &params, seed, 16).expect("run")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_revocable);
criterion_main!(benches);
