//! Criterion bench: graph property computation (substrates S2/S3).

use ale_graph::{GraphProps, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_props(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_props");
    group.sample_size(10);
    for topo in [
        Topology::Complete { n: 64 },
        Topology::Cycle { n: 64 },
        Topology::RandomRegular { n: 256, d: 4 },
        Topology::Grid2d {
            rows: 16,
            cols: 16,
            torus: true,
        },
    ] {
        let graph = topo.build(1).expect("graph");
        group.bench_function(BenchmarkId::from_parameter(topo), |b| {
            b.iter(|| GraphProps::compute_for(&graph, &topo).expect("props"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_props);
criterion_main!(benches);
