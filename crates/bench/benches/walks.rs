//! Criterion bench: the random-walk probing phase in isolation (E-L2 unit).
//!
//! Skips the broadcast phase (schedule override) so walk traffic dominates.

use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{NetworkKnowledge, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_phase");
    group.sample_size(10);
    for x in [4u64, 16, 64] {
        let topo = Topology::RandomRegular { n: 128, d: 4 };
        let graph = topo.build(3).expect("graph");
        let knowledge = NetworkKnowledge {
            n: graph.n(),
            tmix: 32,
            phi: 0.08,
        };
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(graph.n(), cfg.congest_factor);
        group.bench_function(BenchmarkId::new("x", x), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let procs: Vec<IrrevocableProcess> = (0..graph.n())
                    .map(|v| {
                        let mut p = cfg.protocol_params(graph.degree(v)).expect("params");
                        p.x = x;
                        // Skip the broadcast phase entirely to isolate walks.
                        p.broadcast_rounds = 0;
                        IrrevocableProcess::with_candidacy(p, 1 + v as u64, v < 4)
                    })
                    .collect();
                let mut net = Network::new(&graph, procs, seed, budget).expect("net");
                net.run_to_halt(cfg.total_rounds() + 4).expect("run");
                net.metrics().messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
