//! Criterion bench: full irrevocable elections (the E-T1 workload unit).

use ale_core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_irrevocable(c: &mut Criterion) {
    let mut group = c.benchmark_group("irrevocable_election");
    group.sample_size(10);
    for topo in [
        Topology::Complete { n: 32 },
        Topology::Hypercube { dim: 5 },
        Topology::Cycle { n: 16 },
        Topology::RandomRegular { n: 64, d: 4 },
    ] {
        let graph = topo.build(1).expect("graph");
        let props = GraphProps::compute_for(&graph, &topo).expect("props");
        let cfg = IrrevocableConfig::from_knowledge(NetworkKnowledge::from_props(&props));
        group.bench_function(BenchmarkId::from_parameter(topo), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_irrevocable(&graph, &cfg, seed).expect("run")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_irrevocable);
criterion_main!(benches);
