//! Criterion bench: raw simulator round throughput (substrate S1),
//! arena engine vs the pre-arena reference engine.
//!
//! Perf note (flat-arena engine in `ale_congest::network`): the engine
//! stages sends in one capacity-retained buffer metered at send time,
//! delivers via a stable counting sort by target, and skips halted nodes
//! through an active set, so a round costs `O(active + messages)` instead
//! of `O(n + messages)` with per-node allocations. Measured on this bench
//! (release, single-core container, medians of 3 runs; each iteration
//! includes one network construction, which both engines share):
//!
//! | case                                   | reference | arena    | speedup |
//! |----------------------------------------|-----------|----------|---------|
//! | dense gossip, n = 1024, d=4, 100 rds   | 6.10 ms   | 5.30 ms  | 1.15×   |
//! | dense gossip, n = 4096, d=4, 100 rds   | 31.0 ms   | 27.1 ms  | 1.15×   |
//! | mostly halted, n = 20000, 1000 rds     | 70.8 ms   | 11.5 ms  | 6.2×    |
//!
//! The mostly-halted case (≈ 100 of 20 000 nodes still running, the shape
//! of a revocable network after its interesting prefix) is the one the
//! active set exists for: the reference engine pays an `O(n)` halt poll
//! and inbox sweep per round forever; the arena engine pays for the
//! survivors only. Subtracting the shared ~4 ms construction + round-0
//! flood, the steady-state mostly-halted round is ~9× cheaper.

use ale_congest::{Incoming, Network, NodeCtx, OutCtx, Process, ReferenceNetwork};
use ale_graph::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Minimal all-ports gossip process: the simulator-overhead yardstick.
#[derive(Debug, Clone)]
struct Gossip(u64);

impl Process for Gossip {
    type Msg = u64;
    type Output = u64;

    fn round(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        inbox: &[Incoming<u64>],
        out: &mut OutCtx<'_, u64>,
    ) {
        for m in inbox {
            self.0 = self.0.wrapping_add(m.msg);
        }
        out.broadcast(self.0);
    }

    fn output(&self) -> u64 {
        self.0
    }
}

/// A network where only 1-in-`keep` nodes stay active: everyone shouts
/// once in round 0, then all but the beacons halt. Models the long
/// mostly-halted tail of a large revocable run.
#[derive(Debug, Clone)]
struct Beacon {
    active: bool,
    value: u64,
    done: bool,
}

impl Process for Beacon {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            self.value = self.value.wrapping_add(m.msg);
        }
        if ctx.round == 0 {
            out.broadcast(self.value);
            if !self.active {
                self.done = true;
            }
            return;
        }
        out.broadcast(self.value);
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.value
    }
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_dense_gossip_100_rounds");
    for n in [1024usize, 4096] {
        let graph = Topology::RandomRegular { n, d: 4 }.build(1).expect("graph");
        group.bench_function(BenchmarkId::new("arena", n), |b| {
            b.iter(|| {
                let mut net = Network::from_fn(&graph, 1, 64, |_d, _r| Gossip(1));
                net.run_for(100).expect("run");
                net.metrics().messages
            });
        });
        group.bench_function(BenchmarkId::new("reference", n), |b| {
            b.iter(|| {
                let mut net = ReferenceNetwork::from_fn(&graph, 1, 64, |_d, _r| Gossip(1));
                net.run_for(100).expect("run");
                net.metrics().messages
            });
        });
    }
    group.finish();
}

fn bench_mostly_halted(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_mostly_halted_1000_rounds");
    let n = 20_000usize;
    let keep = 200u64; // ≈ 100 beacons stay active
    let graph = Topology::RandomRegular { n, d: 4 }.build(2).expect("graph");
    let make = |_d: usize, rng: &mut rand::rngs::StdRng| {
        use rand::Rng;
        Beacon {
            active: rng.gen_range(0..keep) == 0,
            value: 1,
            done: false,
        }
    };
    group.sample_size(10);
    // 1000 rounds per iteration so steady-state round cost dominates the
    // one-off network construction (n RNG seedings, both engines pay it).
    group.bench_function(BenchmarkId::new("arena", n), |b| {
        b.iter(|| {
            let mut net = Network::from_fn(&graph, 3, 64, make);
            net.run_for(1000).expect("run");
            net.metrics().messages
        });
    });
    group.bench_function(BenchmarkId::new("reference", n), |b| {
        b.iter(|| {
            let mut net = ReferenceNetwork::from_fn(&graph, 3, 64, make);
            net.run_for(1000).expect("run");
            net.metrics().messages
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dense, bench_mostly_halted);
criterion_main!(benches);
