//! Criterion bench: raw simulator round throughput (substrate S1).
//!
//! Perf note (inbox-buffer reuse in `ale_congest::network::step`): before
//! the change the simulator allocated a fresh `Vec<Incoming<_>>` per node
//! per round for staging; now staging buffers are cleared and swapped so
//! capacity persists across rounds. Measured on this bench (release,
//! 4-regular random graphs, 100 gossip rounds per iteration):
//!
//! | n    | before (alloc/round) | after (swap/clear) | delta |
//! |------|----------------------|--------------------|-------|
//! | 64   | 1.183 ms/iter        | 0.704 ms/iter      | −40%  |
//! | 256  | 4.826 ms/iter        | 3.107 ms/iter      | −36%  |
//! | 1024 | 19.013 ms/iter       | 12.146 ms/iter     | −36%  |

use ale_congest::{Incoming, Network, NodeCtx, Outbox, Process};
use ale_graph::Topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Minimal all-ports gossip process: the simulator-overhead yardstick.
#[derive(Debug, Clone)]
struct Gossip(u64);

impl Process for Gossip {
    type Msg = u64;
    type Output = u64;

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
        for m in inbox {
            self.0 = self.0.wrapping_add(m.msg);
        }
        (0..ctx.degree).map(|p| (p, self.0)).collect()
    }

    fn output(&self) -> u64 {
        self.0
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rounds");
    for n in [64usize, 256, 1024] {
        let graph = Topology::RandomRegular { n, d: 4 }.build(1).expect("graph");
        group.throughput(criterion::Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("gossip_100_rounds", n), |b| {
            b.iter(|| {
                let mut net = Network::from_fn(&graph, 1, 64, |_d, _r| Gossip(1));
                net.run_for(100).expect("run");
                net.metrics().messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
