//! Criterion bench: single-candidate cautious broadcast (E-L1 workload).

use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{NetworkKnowledge, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cautious(c: &mut Criterion) {
    let mut group = c.benchmark_group("cautious_broadcast");
    group.sample_size(10);
    for (topo, tmix, phi) in [
        (Topology::RandomRegular { n: 128, d: 4 }, 32u64, 0.08f64),
        (
            Topology::Grid2d {
                rows: 8,
                cols: 8,
                torus: true,
            },
            40,
            0.12,
        ),
    ] {
        let graph = topo.build(3).expect("graph");
        let knowledge = NetworkKnowledge {
            n: graph.n(),
            tmix,
            phi,
        };
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(graph.n(), cfg.congest_factor);
        group.bench_function(BenchmarkId::from_parameter(topo), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let procs: Vec<IrrevocableProcess> = (0..graph.n())
                    .map(|v| {
                        let p = cfg.protocol_params(graph.degree(v)).expect("params");
                        IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
                    })
                    .collect();
                let mut net = Network::new(&graph, procs, seed, budget).expect("net");
                net.run_for(cfg.broadcast_rounds()).expect("run");
                net.metrics().messages
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cautious);
criterion_main!(benches);
