//! Parallel seed fleets — thin shim over the `ale-lab` fleet runner.
//!
//! Every experiment in the harness repeats a trial across many seeds; the
//! heavy lifting (work distribution, per-worker result batches, ordered
//! merging) lives in [`ale_lab::fleet`]. This module keeps the historical
//! `parallel_trials` entry point and re-exports the scalar statistics the
//! figure binaries and tests use.
//!
//! The old implementation here collected results under one
//! `Mutex<Vec<Option<T>>>`; the lab runner replaces that with per-worker
//! batches merged once at the end, so the fleet hot path never serializes
//! on a lock.

pub use ale_lab::stats::{mean, median, std_dev};

/// Runs `trial(seed)` for each seed in `0..seeds`, in parallel, returning
/// results ordered by seed.
///
/// # Examples
///
/// ```
/// let squares = ale_bench::sweep::parallel_trials(8, 4, |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_trials<T, F>(seeds: u64, workers: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let tasks = usize::try_from(seeds).expect("seed count fits usize");
    ale_lab::fleet::run_indexed(tasks, workers, |i| trial(i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_are_seed_ordered() {
        let out = parallel_trials(100, 8, |s| s + 1);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn single_worker_works() {
        let out = parallel_trials(5, 1, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zero_seeds_is_empty() {
        let out: Vec<u64> = parallel_trials(0, 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
