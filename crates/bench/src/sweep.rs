//! Parallel seed fleets.
//!
//! Every experiment in the harness repeats a trial across many seeds. Each
//! trial is an independent deterministic simulation, so the fleet is
//! embarrassingly parallel: seeds are distributed to worker threads over a
//! crossbeam channel and results collected under a `parking_lot` mutex
//! (both crates are vendored for exactly this; see DESIGN.md).

use parking_lot::Mutex;

/// Runs `trial(seed)` for each seed in `0..seeds`, in parallel, returning
/// results ordered by seed.
///
/// # Examples
///
/// ```
/// let squares = ale_bench::sweep::parallel_trials(8, 4, |seed| seed * seed);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_trials<T, F>(seeds: u64, workers: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = workers.clamp(1, 64);
    let (tx, rx) = crossbeam::channel::unbounded::<u64>();
    for seed in 0..seeds {
        tx.send(seed).expect("channel open");
    }
    drop(tx);

    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..seeds).map(|_| None).collect::<Vec<_>>());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            let trial = &trial;
            scope.spawn(move |_| {
                while let Ok(seed) = rx.recv() {
                    let out = trial(seed);
                    results.lock()[seed as usize] = Some(out);
                }
            });
        }
    })
    .expect("worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every seed processed"))
        .collect()
}

/// Mean of a float sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for fewer than 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median (averaging the middle pair for even sizes).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in experiment data"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_are_seed_ordered() {
        let out = parallel_trials(100, 8, |s| s + 1);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
    }

    #[test]
    fn single_worker_works() {
        let out = parallel_trials(5, 1, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zero_seeds_is_empty() {
        let out: Vec<u64> = parallel_trials(0, 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
