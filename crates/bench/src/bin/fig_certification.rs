//! Thin wrapper: `fig_certification [--quick] [options]` == `ale-lab run certification ...`.
//!
//! **E-L678 — certification-phase statistics** (Lemmas 6–8).
//! The experiment itself is the registered `certification` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("certification"));
}
