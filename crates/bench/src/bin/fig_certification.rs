//! **E-L678 — certification-phase statistics** (Lemmas 6–8).
//!
//! Monte-Carlo checks of the three coloring lemmas, using the paper's
//! exact parameter functions:
//!
//! * **Lemma 6**: once `k^{1+ε} ≥ 2n+1`, at least `f(k)/2` of the `f(k)`
//!   certification iterations have **no** white node, whp.
//! * **Lemma 8**: while `2n+1 ≤ k^{1+ε} ≤ 4n`, **some** iteration has a
//!   white node, with probability ≥ 1 − ξ.
//! * **Lemma 7**: nodes abstain from choosing IDs until
//!   `k^{1+ε}·log₂(4k) ≥ n`, with probability ≥ 1 − ξ — validated at the
//!   protocol level by reading certificate distributions from real runs.
//!
//! Usage: `fig_certification [--quick]`

use ale_bench::Table;
use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::Topology;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mc_trials = if quick { 200 } else { 2000 };
    let eps = 1.0;
    let xi = 0.2;
    let params = RevocableParams::paper_blind(eps, xi);

    println!("# E-L678: certification-phase statistics (eps={eps}, xi={xi})\n");

    // Lemmas 6 & 8: pure coloring Monte Carlo with exact p(k), f(k).
    println!("## Lemmas 6 & 8: white-iteration counts ({mc_trials} Monte-Carlo trials)\n");
    let mut tbl = Table::new([
        "n", "k", "k^2 vs 2n+1", "f(k)", "Pr[empty majority] (L6 wants ->1)",
        "Pr[some white iter] (L8 wants >=1-xi)",
    ]);
    let mut rng = StdRng::seed_from_u64(3);
    for n in [8usize, 16, 32] {
        for k in [2u64, 4, 8, 16] {
            let k_pow = params.k_pow(k);
            let p = params.p(k);
            let f = params.f(k);
            let mut empty_majority = 0usize;
            let mut some_white = 0usize;
            for _ in 0..mc_trials {
                let mut empties = 0u64;
                let mut whites_seen = false;
                for _ in 0..f {
                    let any_white = (0..n).any(|_| rng.gen_bool(p));
                    if any_white {
                        whites_seen = true;
                    } else {
                        empties += 1;
                    }
                }
                if 2 * empties > f {
                    empty_majority += 1;
                }
                if whites_seen {
                    some_white += 1;
                }
            }
            let regime = if k_pow >= (2 * n + 1) as f64 {
                if k_pow <= (4 * n) as f64 {
                    "in [2n+1, 4n]"
                } else {
                    "above 4n"
                }
            } else {
                "below"
            };
            tbl.push_row([
                n.to_string(),
                k.to_string(),
                regime.into(),
                f.to_string(),
                format!("{:.3}", empty_majority as f64 / mc_trials as f64),
                format!("{:.3}", some_white as f64 / mc_trials as f64),
            ]);
        }
    }
    println!("{}", tbl.to_markdown());

    // Lemma 7 at protocol level: certificate distribution from real runs.
    println!("## Lemma 7: certificates chosen by real runs (scaled r, paper f)\n");
    let run_params = RevocableParams::paper_blind(eps, xi).with_scales(0.02, 0.5, 1.0);
    let trials = if quick { 5 } else { 15 };
    let mut t7 = Table::new([
        "n", "abstention bound: min k with k^2*log2(4k) >= n", "min cert seen", "max cert seen",
        "runs",
    ]);
    for n in [4usize, 8, 12] {
        let g = Topology::Complete { n }.build(0).expect("graph");
        let mut min_cert = u64::MAX;
        let mut max_cert = 0u64;
        let mut bound_k = 2u64;
        while params.k_pow(bound_k) * (4.0 * bound_k as f64).log2() < n as f64 {
            bound_k *= 2;
        }
        for seed in 0..trials {
            let r = run_revocable(&g, &run_params, seed, 16).expect("run");
            for v in &r.verdicts {
                if let Some(c) = v.cert {
                    min_cert = min_cert.min(c);
                    max_cert = max_cert.max(c);
                }
            }
        }
        t7.push_row([
            n.to_string(),
            bound_k.to_string(),
            if min_cert == u64::MAX {
                "-".into()
            } else {
                min_cert.to_string()
            },
            max_cert.to_string(),
            trials.to_string(),
        ]);
        eprintln!("lemma7 n={n} done");
    }
    println!("{}", t7.to_markdown());
    println!(
        "\nLemma 7 reproduced iff certificates cluster at/above the abstention bound\n\
         (early certificates are *possible* — the lemma is probabilistic — but the\n\
         *winning* certificate, the max, must sit at a size-revealing estimate)."
    );
}
