//! **E-L34 — diffusion convergence** (Lemmas 3–4).
//!
//! Lemma 3: the `Avg` diffusion converges to the average potential at every
//! node. Lemma 4: `r ≥ (2/φ²)·log(n/γ)` rounds suffice for relative error
//! `γ`, where `φ` is the conductance of the diffusion chain
//! (`s_ij = 1/(2k^{1+ε})` per edge).
//!
//! The experiment builds the exact diffusion matrix per family, runs the
//! potential vector forward, measures the first round where the max
//! relative error drops below `γ`, and compares against Lemma 4's bound —
//! measured/bound ≤ 1 everywhere is the reproduction target.
//!
//! Usage: `fig_diffusion [--quick]`

use ale_bench::Table;
use ale_graph::Topology;
use ale_markov::{conductance, MarkovChain};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let eps = 1.0;

    println!("# E-L34: diffusion convergence vs Lemma 4 bound (eps={eps})\n");
    let mut tbl = Table::new([
        "family", "n", "k", "phi(chain)", "gamma", "measured rounds", "bound (2/phi^2)ln(n/gamma)",
        "measured/bound",
    ]);

    let topos: Vec<Topology> = vec![
        Topology::Complete { n: 12 },
        Topology::Cycle { n: 12 },
        Topology::Hypercube { dim: 3 },
        Topology::Star { n: 10 },
        Topology::Barbell { k: 5 },
    ];
    let gammas: &[f64] = if quick { &[0.1] } else { &[0.1, 0.01, 0.001] };

    for topo in topos {
        let graph = topo.build(0).expect("graph");
        let n = graph.n();
        // Estimate k: the first k with k^{1+eps} >= 2n+1 (the Lemma 5
        // regime where the averaging matrix is valid for every degree).
        let mut k = 2u64;
        while (k as f64).powf(1.0 + eps) < (2 * n + 1) as f64 {
            k *= 2;
        }
        let alpha = 1.0 / (2.0 * (k as f64).powf(1.0 + eps));
        let chain = MarkovChain::diffusion(&graph.adjacency(), alpha).expect("chain");
        let phi = conductance::chain_conductance_exact(chain.matrix()).expect("phi");

        // Initial potentials: one white node (the Lemma 5 scenario l >= 1).
        let mut rng = StdRng::seed_from_u64(5);
        let white = rng.gen_range(0..n);
        let mut pot: Vec<f64> = (0..n).map(|i| if i == white { 0.0 } else { 1.0 }).collect();
        let avg = pot.iter().sum::<f64>() / n as f64;

        let mut round = 0u64;
        let mut measured: Vec<Option<u64>> = vec![None; gammas.len()];
        let max_rounds = 4_000_000u64;
        while measured.iter().any(Option::is_none) && round < max_rounds {
            pot = chain.step(&pot).expect("step");
            round += 1;
            let max_rel = pot
                .iter()
                .map(|p| (p - avg).abs() / avg)
                .fold(0.0f64, f64::max);
            for (gi, &g) in gammas.iter().enumerate() {
                if measured[gi].is_none() && max_rel <= g {
                    measured[gi] = Some(round);
                }
            }
        }

        for (gi, &gamma) in gammas.iter().enumerate() {
            let bound = (2.0 / (phi * phi)) * (n as f64 / gamma).ln();
            let m = measured[gi].unwrap_or(max_rounds);
            tbl.push_row([
                topo.family().to_string(),
                n.to_string(),
                k.to_string(),
                format!("{phi:.6}"),
                format!("{gamma}"),
                m.to_string(),
                format!("{bound:.0}"),
                format!("{:.3}", m as f64 / bound),
            ]);
        }
        eprintln!("{topo} done");
    }

    println!("{}", tbl.to_markdown());
    println!(
        "\nLemma 4 reproduced iff every measured/bound ≤ 1. The bound is loose by\n\
         design (Cheeger is quadratic); ratios ≪ 1 on well-connected families are expected."
    );
}
