//! Thin wrapper: `fig_diffusion [--quick] [options]` == `ale-lab run diffusion ...`.
//!
//! **E-L34 — diffusion convergence** (Lemmas 3–4).
//! The experiment itself is the registered `diffusion` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("diffusion"));
}
