//! **E-F12 — the pumping-wheel phenomenon** (Theorem 2, Figures 1–2).
//!
//! Three sections:
//!
//! 1. **Witness geometry** (Figures 1–2 as data): layout counts and the
//!    proof's astronomically large `N` versus the empirically sufficient
//!    ones.
//! 2. **Split-brain series**: a stop-by-`T` algorithm (this repo's
//!    Theorem 1 protocol, configured to believe the network is `C_{n₀}`)
//!    run on `C_{f·n₀}`; Pr[≥2 leaders] rises to 1 and the mean leader
//!    count grows ~linearly in `N` — Theorem 2's claim, empirically.
//! 3. **The revocable contrast**: the same oversized cycle under the
//!    knowledge-free revocable protocol converges to a single leader —
//!    the motivation for Definition 2.
//!
//! Usage: `fig_impossibility [--quick]`

use ale_bench::Table;
use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::generators;
use ale_impossibility::{split_brain_series, PumpingLayout};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 5 } else { 15 };
    let n0 = 8usize;

    println!("# E-F12: impossibility of irrevocable LE without n (Theorem 2)\n");

    // Section 1: witness geometry.
    println!("## Witness geometry (Figures 1–2)\n");
    let mut geo = Table::new(["n0", "T", "N", "witnesses", "witness len", "core", "segment"]);
    for (w_n0, t, blocks) in [(4usize, 3usize, 3usize), (8, 6, 4), (8, 6, 16)] {
        let layout = PumpingLayout::new(w_n0, t, blocks * (4 * t + 2 * w_n0)).expect("layout");
        geo.push_row([
            w_n0.to_string(),
            t.to_string(),
            layout.big_n.to_string(),
            layout.witness_count().to_string(),
            layout.witness_len().to_string(),
            (2 * w_n0).to_string(),
            w_n0.to_string(),
        ]);
    }
    println!("{}", geo.to_markdown());
    println!(
        "Proof-sufficient block count for (n0=4, T=3, c=1/2): {} — versus the ~dozens of\n\
         blocks at which the phenomenon is already empirically overwhelming below.\n",
        PumpingLayout::proof_block_count(4, 3, 0.5)
    );

    // Section 2: split-brain series.
    println!("## Split-brain frequency vs blow-up (n0 = {n0}, {trials} trials/point)\n");
    let factors: &[usize] = if quick {
        &[1, 8, 32]
    } else {
        &[1, 4, 8, 16, 32, 64, 128]
    };
    let series = split_brain_series(n0, factors, trials, 7).expect("series");
    let mut tbl = Table::new(["N", "N/n0", "Pr[>=2 leaders]", "mean leaders"]);
    for p in &series {
        tbl.push_row([
            p.big_n.to_string(),
            (p.big_n / p.n0).to_string(),
            format!("{:.2}", p.split_rate()),
            format!("{:.2}", p.mean_leaders),
        ]);
        eprintln!("split-brain N={} done", p.big_n);
    }
    println!("{}", tbl.to_markdown());

    // Section 3: revocable contrast. The revocable protocol's ring cost is
    // Corollary 1 in the flesh — the diffusion ladder grows like Θ(n⁴) on
    // cycles (the spectral term (4n)²/i(G)² with i(C_n) = Θ(1/n)) — so the
    // largest tractable ring is C12 (stabilizing estimate k* = 8). That
    // intractability is not a harness limitation; it *is* the paper's
    // Õ(n^{4(2+ε)}) statement, and EXPERIMENTS.md reports it as such.
    println!("## Revocable contrast (no knowledge of n; ring family, tractable size)\n");
    let big_n = 12usize;
    let g = generators::cycle(big_n).expect("cycle");
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
    let max_k = 8u64; // first k with k² > 4·12
    let mut contrast = Table::new(["seed", "stabilized", "leaders", "rounds to stability"]);
    for seed in 0..(trials.min(5) as u64) {
        let r = run_revocable(&g, &params, seed, max_k).expect("revocable");
        contrast.push_row([
            seed.to_string(),
            r.stabilized.to_string(),
            r.outcome.leader_count().to_string(),
            r.rounds_at_stability
                .map_or("-".into(), |x| x.to_string()),
        ]);
        eprintln!("revocable contrast seed={seed} done");
    }
    println!("{}", contrast.to_markdown());
    println!(
        "The stop-by-T protocol splits oversized rings into many leader domains;\n\
         the revocable protocol, never committing, converges to exactly one —\n\
         at the polynomial price Corollary 1 predicts (rings are its worst case)."
    );
}
