//! Thin wrapper: `fig_impossibility [--quick] [options]` == `ale-lab run impossibility ...`.
//!
//! **E-F12 — the pumping-wheel phenomenon** (Theorem 2, Figures 1–2).
//! The experiment itself is the registered `impossibility` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("impossibility"));
}
