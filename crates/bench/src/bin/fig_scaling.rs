//! Thin wrapper: `fig_scaling [--quick] [options]` == `ale-lab run scaling ...`.
//!
//! **E-T1b — message-complexity scaling** (Theorem 1 shape).
//! The experiment itself is the registered `scaling` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("scaling"));
}
