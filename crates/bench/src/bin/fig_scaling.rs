//! **E-T1b — message-complexity scaling** (Table 1, row "this work").
//!
//! Sweeps `n` per family and checks Theorem 1's message bound two ways:
//!
//! 1. **Raw exponents in `n`** for this work vs the Gilbert baseline. The
//!    polylog factors and the `n`-dependence of `t_mix`/`Φ` estimates
//!    inflate raw slopes above the naive `0.5`/`2.0`, so the raw fit is
//!    reported but the pass/fail criterion is (2):
//! 2. **Fit against the theory quantity**
//!    `q(n) = √(n·ln n·t_mix/Φ)·log₂²n` — the explicit bound of
//!    Theorem 1's proof (broadcast `Õ(x·t_mix)` per candidate ×
//!    `Θ(log n)` candidates, walks `x·len`, convergecast ≤ broadcast).
//!    Measured messages vs `q(n)` should fit a power law with exponent
//!    ≈ 1 — that is the reproduction of the bound's *shape*.
//!
//! On cycles the gilbert/this-work ratio should grow (`~√(t_mix·Φ)·polylog
//! = √n/polylog`), crossing 1 near n ≈ 24–64 — Table 1's improvement row.
//!
//! Usage: `fig_scaling [--quick]`

use ale_bench::{power_fit, Algorithm, GraphContext, Table};
use ale_graph::Topology;

struct Family {
    name: &'static str,
    sizes: Vec<Topology>,
}

/// Theorem 1's explicit message quantity (see module docs).
fn theory_q(n: f64, tmix: f64, phi: f64) -> f64 {
    let log2n = n.log2().max(1.0);
    (n * n.ln().max(1.0) * tmix / phi).sqrt() * log2n * log2n
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 6 } else { 20 };
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());

    let families = vec![
        Family {
            name: "complete",
            sizes: [16usize, 32, 64, 128, 256]
                .iter()
                .map(|&n| Topology::Complete { n })
                .collect(),
        },
        Family {
            name: "hypercube",
            sizes: [4usize, 5, 6, 7, 8]
                .iter()
                .map(|&dim| Topology::Hypercube { dim })
                .collect(),
        },
        Family {
            name: "cycle",
            sizes: [8usize, 12, 16, 24, 32, 48]
                .iter()
                .map(|&n| Topology::Cycle { n })
                .collect(),
        },
    ];

    println!("# E-T1b: message scaling ({trials} seeds per point)\n");
    let mut fits = Table::new([
        "family",
        "algorithm",
        "raw exponent in n",
        "exponent vs theory q(n)",
        "r^2 (theory fit)",
    ]);

    for family in families {
        let mut series = Table::new([
            "n", "t_mix", "phi", "theory q(n)", "this-work msgs", "gilbert18 msgs", "ratio",
        ]);
        let mut this_pts = Vec::new();
        let mut this_theory_pts = Vec::new();
        let mut gil_pts = Vec::new();
        for topo in &family.sizes {
            let ctx = GraphContext::build(*topo, 1).expect("graph");
            let n = ctx.props.n as f64;
            let q = theory_q(n, ctx.knowledge.tmix as f64, ctx.knowledge.phi);
            let med = |alg: Algorithm| {
                let outs = ale_bench::sweep::parallel_trials(trials, workers, |seed| {
                    ctx.run(alg, seed).expect("trial").metrics.messages as f64
                });
                ale_bench::sweep::median(&outs)
            };
            let tw = med(Algorithm::ThisWork);
            let gl = med(Algorithm::Gilbert);
            this_pts.push((n, tw.max(1.0)));
            this_theory_pts.push((q, tw.max(1.0)));
            gil_pts.push((n, gl.max(1.0)));
            series.push_row([
                format!("{}", ctx.props.n),
                ctx.knowledge.tmix.to_string(),
                format!("{:.4}", ctx.knowledge.phi),
                format!("{q:.0}"),
                format!("{tw:.0}"),
                format!("{gl:.0}"),
                format!("{:.2}", gl / tw.max(1.0)),
            ]);
            eprintln!("{}: n={} done", family.name, ctx.props.n);
        }
        println!("## {}\n\n{}", family.name, series.to_markdown());
        let tw_fit = power_fit(&this_pts);
        let tw_theory_fit = power_fit(&this_theory_pts);
        let gl_fit = power_fit(&gil_pts);
        fits.push_row([
            family.name.to_string(),
            "this-work".into(),
            format!("{:.3}", tw_fit.exponent),
            format!("{:.3}", tw_theory_fit.exponent),
            format!("{:.3}", tw_theory_fit.r_squared),
        ]);
        fits.push_row([
            family.name.to_string(),
            "gilbert18".into(),
            format!("{:.3}", gl_fit.exponent),
            "-".into(),
            "-".into(),
        ]);
    }

    println!("## Fitted exponents\n\n{}", fits.to_markdown());
    println!(
        "Reproduction criterion: this-work's exponent against the theory quantity\n\
         q(n) = sqrt(n·ln n·t_mix/phi)·log2²n is ≈ 1 (±0.35), i.e. measured messages\n\
         track Theorem 1's bound; and the gilbert/this-work ratio grows on cycles."
    );
}
