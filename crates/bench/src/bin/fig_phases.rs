//! **Phase profile** — the communication anatomy of one irrevocable run.
//!
//! Traces messages per round and bins them, making the protocol's three
//! phases visible as data: the cautious-broadcast plateau (super-round
//! multiplexing: sparse but long), the walk burst (every token moves every
//! round), and the convergecast trickle (send-on-change). A compact
//! reproduction of the structure behind Theorem 1's time/message split.
//!
//! Usage: `fig_phases [--quick]`

use ale_bench::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::Topology;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = if quick {
        Topology::Complete { n: 32 }
    } else {
        Topology::Hypercube { dim: 6 }
    };
    let graph = topo.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topo).expect("config");
    let budget = congest_budget(cfg.knowledge.n, cfg.congest_factor);

    let cfg_copy = cfg;
    let mut net = Network::from_fn(&graph, 5, budget, |deg, rng| {
        let params = cfg_copy.protocol_params(deg).expect("params");
        IrrevocableProcess::new(params, rng)
    });
    net.enable_trace();
    net.run_to_halt(cfg.total_rounds() + 4).expect("run");

    let b_end = cfg.broadcast_rounds();
    let w_end = b_end + cfg.walk_rounds();
    let c_end = w_end + cfg.converge_rounds();

    println!("# Phase profile on {topo} (seed 5)\n");
    println!(
        "phase boundaries: broadcast [0, {b_end}), walk [{b_end}, {w_end}), \
         convergecast [{w_end}, {c_end})\n"
    );

    let mut tbl = Table::new(["phase", "rounds", "messages", "bits", "msgs/round"]);
    let mut phase_stats = [(0u64, 0u64, 0u64); 3];
    for t in net.trace() {
        let idx = if t.round < b_end {
            0
        } else if t.round < w_end {
            1
        } else {
            2
        };
        phase_stats[idx].0 += 1;
        phase_stats[idx].1 += t.messages;
        phase_stats[idx].2 += t.bits;
    }
    for (name, (rounds, msgs, bits)) in
        ["broadcast", "walk", "convergecast"].iter().zip(phase_stats)
    {
        tbl.push_row([
            name.to_string(),
            rounds.to_string(),
            msgs.to_string(),
            bits.to_string(),
            format!("{:.2}", msgs as f64 / rounds.max(1) as f64),
        ]);
    }
    println!("{}", tbl.to_markdown());

    // Coarse sparkline: 40 buckets of message volume.
    let trace = net.trace();
    let buckets = 40usize;
    let per = (trace.len() / buckets).max(1);
    let mut volumes = vec![0u64; buckets];
    for (i, t) in trace.iter().enumerate() {
        let b = (i / per).min(buckets - 1);
        volumes[b] += t.messages;
    }
    let max = *volumes.iter().max().unwrap_or(&1);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let line: String = volumes
        .iter()
        .map(|&v| glyphs[((v as f64 / max.max(1) as f64) * 9.0).round() as usize])
        .collect();
    println!("message-volume sparkline (time →):\n[{line}]");
    println!(
        "\ntotal: {} messages, {} rounds; walk burst dominates per-round volume,\n\
         broadcast dominates wall-clock (the multiplexed super-rounds of Theorem 1).",
        net.metrics().messages,
        net.metrics().rounds
    );
}
