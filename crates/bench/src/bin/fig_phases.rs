//! Thin wrapper: `fig_phases [--quick] [options]` == `ale-lab run phases ...`.
//!
//! **Phase profile** — the communication anatomy of one irrevocable run.
//! The experiment itself is the registered `phases` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("phases"));
}
