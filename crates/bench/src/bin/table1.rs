//! Thin wrapper: `table1 [--quick] [options]` == `ale-lab run table1 ...`.
//!
//! **E-T1 — Table 1 shootout** (paper Table 1).
//! The experiment itself is the registered `table1` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("table1"));
}
