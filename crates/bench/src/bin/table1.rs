//! **E-T1 — Table 1 shootout** (paper Table 1).
//!
//! Runs this paper's irrevocable protocol against the related-work
//! baselines on the same graphs/seeds and prints success rates and median
//! message/bit/round costs. The paper's Table 1 is a table of asymptotic
//! bounds; the reproduction target is the *ordering*:
//!
//! * messages: `this-work ≤ gilbert18` on every family (Theorem 1's
//!   improvement), with the gap widening as mixing degrades;
//! * flood-based baselines pay `Θ(m)`-per-improvement traffic, losing on
//!   sparse well-mixing graphs and large `m`;
//! * times: all candidates are `Õ(t_mix)`-ish except `flood-*`, which are
//!   `O(D)` — the knowledge trade-off of rows 1 and 4–6.
//!
//! Usage: `table1 [--quick]`

use ale_bench::{Algorithm, CellSummary, GraphContext, Table};
use ale_graph::Topology;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 10 } else { 30 };
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());

    let topologies: Vec<Topology> = if quick {
        vec![
            Topology::Complete { n: 32 },
            Topology::Hypercube { dim: 5 },
            Topology::Cycle { n: 16 },
        ]
    } else {
        vec![
            Topology::Complete { n: 64 },
            Topology::Hypercube { dim: 6 },
            Topology::RandomRegular { n: 64, d: 4 },
            Topology::Grid2d {
                rows: 8,
                cols: 8,
                torus: true,
            },
            Topology::RingOfCliques { cliques: 8, k: 8 },
            Topology::Cycle { n: 32 },
        ]
    };

    println!("# E-T1: Table 1 shootout ({trials} seeds per cell)\n");
    let mut table = Table::new([
        "family", "n", "m", "t_mix", "phi", "algorithm", "success", "med msgs", "med bits",
        "med congest rounds",
    ]);

    for topo in topologies {
        let ctx = GraphContext::build(topo, 1).expect("graph construction");
        eprintln!(
            "running {topo}: n={} m={} tmix={} phi={:.4}",
            ctx.props.n, ctx.props.m, ctx.knowledge.tmix, ctx.knowledge.phi
        );
        for alg in Algorithm::ALL {
            let outcomes = ale_bench::sweep::parallel_trials(trials, workers, |seed| {
                ctx.run(alg, seed).expect("trial")
            });
            let cell = CellSummary::from_outcomes(alg, &outcomes);
            table.push_row([
                ctx.topology.family().to_string(),
                ctx.props.n.to_string(),
                ctx.props.m.to_string(),
                ctx.knowledge.tmix.to_string(),
                format!("{:.4}", ctx.knowledge.phi),
                alg.to_string(),
                format!("{}/{}", cell.unique, cell.trials),
                format!("{:.0}", cell.median_messages),
                format!("{:.0}", cell.median_bits),
                format!("{:.0}", cell.median_congest_rounds),
            ]);
        }
    }

    println!("{}", table.to_markdown());
    println!("\nCSV:\n{}", table.to_csv());
}
