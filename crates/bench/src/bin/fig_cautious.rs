//! Thin wrapper: `fig_cautious [--quick] [options]` == `ale-lab run cautious ...`.
//!
//! **E-L1 — cautious broadcast cost and coverage** (Lemma 1).
//! The experiment itself is the registered `cautious` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("cautious"));
}
