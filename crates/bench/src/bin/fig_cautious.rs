//! **E-L1 — cautious broadcast cost and coverage** (Lemma 1).
//!
//! Lemma 1: for parameter `x`, cautious broadcast takes `O(t_mix·log n)`
//! time, sends `Õ(x·t_mix)` messages, and informs `Ω̃(x·t_mix·Φ)` nodes.
//! This experiment plants a **single** candidate, runs only the broadcast
//! phase, and sweeps `x`:
//!
//! * territory size should track the target `x·t_mix·Φ` within small
//!   constants (measured 1–4×; the paper's prose claims 2× assuming
//!   per-step size reports, while the message-optimal crossing-only
//!   reports used here — the reading consistent with the paper's message
//!   accounting — let each level lag a factor below its threshold), until
//!   it saturates at `n`;
//! * messages should grow ~linearly in the territory (≈ `x·t_mix·Φ` up to
//!   polylog), i.e. `O(1)` messages per link per threshold doubling.
//!
//! Usage: `fig_cautious [--quick]`

use ale_bench::{power_fit, Table};
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 4 } else { 12 };

    println!("# E-L1: cautious broadcast (single candidate)\n");

    for topo in [
        Topology::RandomRegular { n: 256, d: 4 },
        Topology::Grid2d {
            rows: 16,
            cols: 16,
            torus: true,
        },
    ] {
        let graph = topo.build(3).expect("graph");
        let props = GraphProps::compute_for(&graph, &topo).expect("props");
        let knowledge = NetworkKnowledge::from_props(&props);
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(knowledge.n, cfg.congest_factor);

        println!(
            "## {topo} (n={}, t_mix={}, phi={:.4})\n",
            props.n, knowledge.tmix, knowledge.phi
        );
        let mut tbl = Table::new([
            "x", "target x*tmix*phi", "mean territory", "territory/target", "mean msgs",
            "msgs/territory", "rounds",
        ]);
        let mut pts = Vec::new();
        let xs: Vec<u64> = if quick { vec![1, 4, 16] } else { vec![1, 2, 4, 8, 16, 32] };
        for &x in &xs {
            let target = (x as f64 * knowledge.tmix as f64 * knowledge.phi).ceil().max(2.0);
            let mut territory_sum = 0.0;
            let mut msgs_sum = 0.0;
            let mut rounds = 0;
            for seed in 0..trials {
                let mut params = cfg.protocol_params(1).expect("params");
                params.x = x;
                params.final_threshold = target as u64;
                // Plant exactly one candidate at node 0 (host-side planting;
                // the processes themselves stay anonymous).
                let procs: Vec<IrrevocableProcess> = (0..graph.n())
                    .map(|v| {
                        let mut p = params;
                        p.degree = graph.degree(v);
                        IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
                    })
                    .collect();
                let mut net = Network::new(&graph, procs, seed, budget).expect("network");
                net.run_for(cfg.broadcast_rounds()).expect("run");
                let territory = net
                    .processes()
                    .iter()
                    .filter(|p| !p.known_sources().is_empty())
                    .count();
                territory_sum += territory as f64;
                msgs_sum += net.metrics().messages as f64;
                rounds = net.metrics().rounds;
            }
            let mean_territory = territory_sum / trials as f64;
            let mean_msgs = msgs_sum / trials as f64;
            tbl.push_row([
                x.to_string(),
                format!("{target:.0}"),
                format!("{mean_territory:.1}"),
                format!("{:.2}", mean_territory / target),
                format!("{mean_msgs:.0}"),
                format!("{:.2}", mean_msgs / mean_territory.max(1.0)),
                rounds.to_string(),
            ]);
            pts.push((target, mean_territory.max(1.0)));
            eprintln!("{topo}: x={x} done");
        }
        println!("{}", tbl.to_markdown());
        let fit = power_fit(&pts);
        println!(
            "territory vs target exponent: {:.3} (r^2 {:.3}; Lemma 1 predicts ~1.0 until\n\
             the territory saturates at n)\n",
            fit.exponent, fit.r_squared
        );
    }
}
