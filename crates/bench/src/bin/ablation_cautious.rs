//! **Ablation — cautious-broadcast reporting discipline** (DESIGN.md §4).
//!
//! The paper's pseudocode reports subtree sizes to the parent every round
//! (Algorithm 4 line 24); its message analysis implies reporting only on
//! threshold crossings. This ablation runs both readings on the same
//! graphs/seeds and quantifies the trade-off:
//!
//! * **OnCrossing** (default): `O(log)` reports per link → the `Õ(x·t_mix)`
//!   message bound of Lemma 1, at the cost of territory overshoot up to
//!   ~4× the target (stale counts compound along the tree);
//! * **OnChange**: every size change reported → tighter overshoot
//!   (closer to the prose's 2×), more messages.
//!
//! Both elect correctly; the knob only moves constants — which is the
//! point: the paper's bound survives either reading.
//!
//! Usage: `ablation_cautious [--quick]`

use ale_bench::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{
    run_irrevocable, IrrevocableConfig, IrrevocableProcess, ReportDiscipline,
};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 5 } else { 15 };

    println!("# Ablation: cautious-broadcast parent-report discipline\n");

    // Part 1: single-candidate territories — overshoot and message cost.
    println!("## Single-candidate territories ({trials} seeds per cell)\n");
    let mut tbl = Table::new([
        "graph", "discipline", "target", "mean territory", "overshoot", "mean msgs",
    ]);
    for topo in [
        Topology::RandomRegular { n: 192, d: 4 },
        Topology::Grid2d {
            rows: 12,
            cols: 12,
            torus: true,
        },
    ] {
        let graph = topo.build(3).expect("graph");
        let props = GraphProps::compute_for(&graph, &topo).expect("props");
        let knowledge = NetworkKnowledge::from_props(&props);
        for discipline in [ReportDiscipline::OnCrossing, ReportDiscipline::OnChange] {
            let mut cfg = IrrevocableConfig::from_knowledge(knowledge);
            cfg.report_discipline = discipline;
            let budget = congest_budget(knowledge.n, cfg.congest_factor);
            let target = cfg.final_threshold() as f64;
            let mut territory_sum = 0.0;
            let mut msg_sum = 0.0;
            for seed in 0..trials {
                let procs: Vec<IrrevocableProcess> = (0..graph.n())
                    .map(|v| {
                        let p = cfg.protocol_params(graph.degree(v)).expect("params");
                        IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
                    })
                    .collect();
                let mut net = Network::new(&graph, procs, seed, budget).expect("net");
                net.run_for(cfg.broadcast_rounds()).expect("run");
                territory_sum += net
                    .processes()
                    .iter()
                    .filter(|p| !p.known_sources().is_empty())
                    .count() as f64;
                msg_sum += net.metrics().messages as f64;
            }
            let mean_t = territory_sum / trials as f64;
            tbl.push_row([
                topo.to_string(),
                format!("{discipline:?}"),
                format!("{target:.0}"),
                format!("{mean_t:.1}"),
                format!("{:.2}x", mean_t / target),
                format!("{:.0}", msg_sum / trials as f64),
            ]);
            eprintln!("{topo} {discipline:?} done");
        }
    }
    println!("{}", tbl.to_markdown());

    // Part 2: full elections — the knob must not affect correctness.
    println!("## Full elections under both disciplines\n");
    let mut tbl2 = Table::new(["graph", "discipline", "success", "med msgs"]);
    for topo in [Topology::Complete { n: 32 }, Topology::Hypercube { dim: 5 }] {
        let graph = topo.build(1).expect("graph");
        for discipline in [ReportDiscipline::OnCrossing, ReportDiscipline::OnChange] {
            let mut cfg = IrrevocableConfig::derive_for(&graph, &topo).expect("config");
            cfg.report_discipline = discipline;
            let mut ok = 0;
            let mut msgs = Vec::new();
            for seed in 0..trials {
                let o = run_irrevocable(&graph, &cfg, seed).expect("run");
                if o.is_successful() {
                    ok += 1;
                }
                msgs.push(o.metrics.messages as f64);
            }
            tbl2.push_row([
                topo.to_string(),
                format!("{discipline:?}"),
                format!("{ok}/{trials}"),
                format!("{:.0}", ale_bench::sweep::median(&msgs)),
            ]);
        }
    }
    println!("{}", tbl2.to_markdown());
}
