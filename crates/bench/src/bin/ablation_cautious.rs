//! Thin wrapper: `ablation_cautious [--quick] [options]` == `ale-lab run ablation-cautious ...`.
//!
//! **Ablation — cautious-broadcast reporting discipline** (DESIGN.md §4).
//! The experiment itself is the registered `ablation-cautious` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("ablation-cautious"));
}
