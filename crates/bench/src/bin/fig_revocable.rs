//! **E-T1c — revocable leader election cost growth**
//! (Theorem 3 / Corollary 1, the `(*)` rows of Table 1).
//!
//! Three modes, reported separately (see DESIGN.md "Substitutions"):
//!
//! 1. **Theorem 3, paper-exact `r(k)`** with known `i(G)` on cliques
//!    (`i(K_n) = ⌈n/2⌉`): time should grow like
//!    `n^{4(1+ε)}/i(G)² · polylog = Õ(n^{2+4ε+...})`/... — on cliques the
//!    `k²⁺²ᵉ/i²` term is `Õ(k^{2ε})`, so the dissemination term `k^{1+ε}`
//!    and the estimate ladder dominate; the harness fits the measured
//!    exponent and prints it next to the prediction from the exact
//!    formulas (evaluated symbolically per `k`).
//! 2. **Corollary 1, paper-exact blind** on tiny graphs (correctness +
//!    cost points, no fit — the `k^{2(2+ε)}` wall).
//! 3. **Scaled blind mode** (`r_scale < 1`): same functional forms,
//!    tractable sizes, used to exhibit the growth *shape* in `n`.
//!
//! Usage: `fig_revocable [--quick]`

use ale_bench::{power_fit, Table};
use ale_core::revocable::{run_revocable, RevocableParams};
use ale_graph::Topology;

fn horizon_for(n: usize, eps: f64) -> u64 {
    // Theory: stabilization once k^{1+eps} > 4n; allow one extra doubling.
    let k = (4.0 * n as f64).powf(1.0 / (1.0 + eps)).ceil() as u64;
    (2 * k.max(2)).next_power_of_two()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 4 } else { 10 };
    let eps = 1.0;
    let xi = 0.2;

    // Mode 1: Theorem 3 on cliques, paper-exact r(k), f scaled 0.25.
    println!("# E-T1c: revocable LE cost growth (eps={eps}, xi={xi})\n");
    println!("## Mode 1: Theorem 3 (known i(G)), cliques, r(k) paper-exact, f(k) x0.25\n");
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 12, 16, 20] };
    let mut t1 = Table::new([
        "n", "i(G)", "max_k", "stabilized", "unique", "med rounds", "formula rounds",
        "measured/formula", "med msgs",
    ]);
    let mut time_pts = Vec::new();
    let mut ratio_pts = Vec::new();
    for &n in sizes {
        let g = Topology::Complete { n }.build(0).expect("graph");
        let ig = (n as f64 / 2.0).ceil();
        let params = RevocableParams::paper_with_ig(eps, xi, ig).with_scales(1.0, 0.25, 1.0);
        let max_k = horizon_for(n, eps);
        // The formula prediction: the ladder through the first estimate
        // whose k^{1+eps} exceeds 4n — exactly the proof's schedule sum.
        let mut k_star = 2u64;
        while (k_star as f64).powf(1.0 + eps) <= 4.0 * n as f64 {
            k_star *= 2;
        }
        let formula = params.rounds_through(k_star) as f64;
        let mut rounds = Vec::new();
        let mut msgs = Vec::new();
        let mut stab = 0;
        let mut unique = 0;
        for seed in 0..trials {
            let r = run_revocable(&g, &params, seed, max_k).expect("run");
            if r.stabilized {
                stab += 1;
                rounds.push(r.rounds_at_stability.unwrap() as f64);
            }
            if r.outcome.leader_count() == 1 {
                unique += 1;
            }
            msgs.push(r.outcome.metrics.messages as f64);
        }
        let med_rounds = ale_bench::sweep::median(&rounds);
        t1.push_row([
            n.to_string(),
            format!("{ig}"),
            max_k.to_string(),
            format!("{stab}/{trials}"),
            format!("{unique}/{trials}"),
            format!("{med_rounds:.0}"),
            format!("{formula:.0}"),
            format!("{:.3}", med_rounds / formula),
            format!("{:.0}", ale_bench::sweep::median(&msgs)),
        ]);
        if med_rounds > 0.0 {
            time_pts.push((n as f64, med_rounds));
            ratio_pts.push(med_rounds / formula);
        }
        eprintln!("thm3 n={n} done");
    }
    println!("{}", t1.to_markdown());
    if time_pts.len() >= 2 {
        let fit = power_fit(&time_pts);
        println!(
            "rounds-to-stability raw exponent in n: {:.3} (r^2 {:.3}).\n\
             Reproduction criterion: measured/formula is roughly constant across n\n\
             (stabilization fires early in the final estimate, as soon as its diffusion\n\
             spreads the winning record, so ratios sit well below 1 — what matters is\n\
             that they do not drift with n); measured values: {:?}\n",
            fit.exponent,
            fit.r_squared,
            ratio_pts.iter().map(|r| format!("{r:.3}")).collect::<Vec<_>>()
        );
    }

    // Mode 2: Corollary 1 paper-exact blind, tiny graphs.
    println!("## Mode 2: Corollary 1 (blind), paper-exact, tiny graphs\n");
    let mut t2 = Table::new(["graph", "stabilized", "unique", "rounds", "congest rounds", "msgs"]);
    let tiny: Vec<(&str, Topology)> = vec![
        ("K2", Topology::Complete { n: 2 }),
        ("K3", Topology::Complete { n: 3 }),
        ("P3", Topology::Path { n: 3 }),
        ("C4", Topology::Cycle { n: 4 }),
    ];
    for (name, topo) in tiny {
        let g = topo.build(0).expect("graph");
        let params = RevocableParams::paper_blind(eps, xi);
        let max_k = horizon_for(g.n(), eps);
        let r = run_revocable(&g, &params, 1, max_k).expect("run");
        t2.push_row([
            name.to_string(),
            r.stabilized.to_string(),
            (r.outcome.leader_count() == 1).to_string(),
            r.outcome.metrics.rounds.to_string(),
            r.outcome.metrics.congest_rounds.to_string(),
            r.outcome.metrics.messages.to_string(),
        ]);
        eprintln!("blind {name} done");
    }
    println!("{}", t2.to_markdown());

    // Mode 3: scaled blind shape sweep. The estimate ladder is a step
    // function of n (costs jump when the stabilizing k* doubles), so the
    // sweep brackets a k* jump (n = 16 forces k* = 16 at eps = 1) and the
    // formula table below extends the shape beyond simulatable sizes.
    println!("## Mode 3: blind, scaled (r x0.002, f x0.1) — growth shape in n\n");
    let sizes: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    let trials3 = if quick { 2 } else { 3 };
    let mut t3 = Table::new(["n", "k*", "stabilized", "unique", "med rounds", "med msgs"]);
    let mut pts = Vec::new();
    for &n in sizes {
        let g = Topology::Complete { n }.build(0).expect("graph");
        let params = RevocableParams::paper_blind(eps, xi).with_scales(0.002, 0.1, 1.0);
        let max_k = horizon_for(n, eps);
        let mut k_star = 2u64;
        while (k_star as f64).powf(1.0 + eps) <= 4.0 * n as f64 {
            k_star *= 2;
        }
        let mut rounds = Vec::new();
        let mut msgs = Vec::new();
        let mut stab = 0;
        let mut unique = 0;
        for seed in 0..trials3 {
            let r = run_revocable(&g, &params, seed, max_k).expect("run");
            if r.stabilized {
                stab += 1;
            }
            if r.outcome.leader_count() == 1 {
                unique += 1;
            }
            rounds.push(r.outcome.metrics.rounds as f64);
            msgs.push(r.outcome.metrics.messages as f64);
        }
        let mr = ale_bench::sweep::median(&rounds);
        t3.push_row([
            n.to_string(),
            k_star.to_string(),
            format!("{stab}/{trials3}"),
            format!("{unique}/{trials3}"),
            format!("{mr:.0}"),
            format!("{:.0}", ale_bench::sweep::median(&msgs)),
        ]);
        pts.push((n as f64, mr));
        eprintln!("scaled blind n={n} done");
    }
    println!("{}", t3.to_markdown());
    if pts.len() >= 2 {
        let fit = power_fit(&pts);
        println!(
            "rounds exponent in n (blind, scaled, across a k* jump): {:.3} (r^2 {:.3})",
            fit.exponent, fit.r_squared
        );
    }

    // Formula-extrapolated ladder costs: Corollary 1's shape beyond
    // simulatable sizes (same code path as the protocol's schedule).
    println!("\n### Corollary 1 formula ladder (paper-exact blind, rounds through k*)\n");
    let mut t4 = Table::new(["n", "k*", "formula rounds"]);
    let paper = RevocableParams::paper_blind(eps, xi);
    let mut formula_pts = Vec::new();
    for n in [4u64, 16, 64, 256, 1024] {
        let mut k_star = 2u64;
        while (k_star as f64).powf(1.0 + eps) <= 4.0 * n as f64 {
            k_star *= 2;
        }
        let rounds = paper.rounds_through(k_star);
        t4.push_row([n.to_string(), k_star.to_string(), rounds.to_string()]);
        formula_pts.push((n as f64, rounds as f64));
    }
    println!("{}", t4.to_markdown());
    let fit = power_fit(&formula_pts);
    println!(
        "formula exponent in n: {:.2} — Corollary 1 predicts Õ(n^{{(2(2+eps)+1)/(1+eps)}})\n\
         ≈ n^{:.1} at eps={eps} for the simulator-rounds ladder (the paper's headline\n\
         Õ(n^{{4(2+eps)}}) counts serialized CONGEST rounds; both shapes are step\n\
         functions of the stabilizing estimate k* = Θ((4n)^{{1/(1+eps)}})).",
        fit.exponent,
        (2.0 * (2.0 + eps) + 1.0) / (1.0 + eps)
    );
}
