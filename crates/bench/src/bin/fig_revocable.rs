//! Thin wrapper: `fig_revocable [--quick] [options]` == `ale-lab run revocable ...`.
//!
//! **E-T1c — revocable LE cost growth** (Theorem 3 / Corollary 1).
//! The experiment itself is the registered `revocable` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("revocable"));
}
