//! Thin wrapper: `fig_thresholds [--quick] [options]` == `ale-lab run thresholds ...`.
//!
//! **E-L5 — threshold detection** (Lemma 5).
//! The experiment itself is the registered `thresholds` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("thresholds"));
}
