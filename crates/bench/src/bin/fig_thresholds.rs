//! **E-L5 — threshold detection** (Lemma 5).
//!
//! Lemma 5: if `k^{1+ε} ≥ 2n+1`, at least one white node exists, and the
//! diffusion runs `r ≥ (2/φ²)·log(k^{2(1+ε)})` rounds, then **no** node ends
//! with potential above `τ(k) = 1 − 1/(k^{1+ε}−1)`.
//!
//! Conversely (the detection direction the protocol exploits): while the
//! estimate is *low* and no white appears nearby, potentials stay at 1 and
//! nodes flag `low`.
//!
//! The experiment runs the exact diffusion matrix for the paper's `r(k)`
//! rounds and reports the max terminal potential against `τ(k)` across the
//! estimate ladder.
//!
//! Usage: `fig_thresholds [--quick]`

use ale_bench::Table;
use ale_core::revocable::RevocableParams;
use ale_graph::{cuts, Topology};
use ale_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let eps = 1.0;
    let xi = 0.2;

    println!("# E-L5: potential thresholds tau(k) across the estimate ladder (eps={eps})\n");
    let mut tbl = Table::new([
        "family", "n", "k", "k^(1+eps)", "regime", "whites", "r(k) rounds", "max potential",
        "tau(k)", "below tau",
    ]);

    let topos: Vec<Topology> = if quick {
        vec![Topology::Complete { n: 8 }, Topology::Cycle { n: 8 }]
    } else {
        vec![
            Topology::Complete { n: 8 },
            Topology::Cycle { n: 8 },
            Topology::Hypercube { dim: 3 },
            Topology::Star { n: 8 },
        ]
    };

    for topo in topos {
        let graph = topo.build(0).expect("graph");
        let n = graph.n();
        let ig = cuts::isoperimetric_exact(&graph).expect("i(G)");
        let params = RevocableParams::paper_with_ig(eps, xi, ig);
        let mut rng = StdRng::seed_from_u64(11);

        for k in [2u64, 4, 8, 16] {
            let k_pow = params.k_pow(k);
            let regime = if k_pow >= (2 * n + 1) as f64 {
                "high (Lemma 5)"
            } else {
                "low"
            };
            let alpha = 1.0 / (2.0 * k_pow);
            // Degrees above k^{1+eps} invalidate the averaging matrix; the
            // protocol flags those nodes low directly. Skip those points.
            if (0..n).any(|v| graph.degree(v) as f64 > k_pow) {
                tbl.push_row([
                    topo.family().to_string(),
                    n.to_string(),
                    k.to_string(),
                    format!("{k_pow:.0}"),
                    "degree>k^(1+eps) (flagged low)".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{:.4}", params.tau(k)),
                    "-".into(),
                ]);
                continue;
            }
            let chain = MarkovChain::diffusion(&graph.adjacency(), alpha).expect("chain");
            // Color with p(k); force at least one white (Lemma 5 assumes
            // l >= 1 — the l = 0 case is Lemma 6's business).
            let p = params.p(k);
            let mut pot: Vec<f64> = (0..n)
                .map(|_| if rng.gen_bool(p) { 0.0 } else { 1.0 })
                .collect();
            if pot.iter().all(|&x| x == 1.0) {
                pot[rng.gen_range(0..n)] = 0.0;
            }
            let whites = pot.iter().filter(|&&x| x == 0.0).count();
            let rounds = params.r(k).min(2_000_000);
            for _ in 0..rounds {
                pot = chain.step(&pot).expect("step");
            }
            let max_pot = pot.iter().copied().fold(0.0f64, f64::max);
            let tau = params.tau(k);
            tbl.push_row([
                topo.family().to_string(),
                n.to_string(),
                k.to_string(),
                format!("{k_pow:.0}"),
                regime.into(),
                whites.to_string(),
                rounds.to_string(),
                format!("{max_pot:.6}"),
                format!("{tau:.6}"),
                (max_pot <= tau).to_string(),
            ]);
        }
        eprintln!("{topo} done");
    }

    println!("{}", tbl.to_markdown());
    println!(
        "\nLemma 5 reproduced iff every 'high' regime row has below-tau = true.\n\
         Low-regime rows may exceed tau — that is exactly the detection signal."
    );
}
