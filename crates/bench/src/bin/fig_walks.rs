//! Thin wrapper: `fig_walks [--quick] [options]` == `ale-lab run walks ...`.
//!
//! **E-L2 — random-walk hitting rates** (Lemma 2).
//! The experiment itself is the registered `walks` scenario in
//! `ale_lab::scenarios`; every `ale-lab run` option (`--param`, `--seeds`,
//! `--workers`, `--out`, ...) passes through.

fn main() {
    std::process::exit(ale_lab::cli::legacy_main("walks"));
}
