//! **E-L2 — random-walk hitting rates** (Lemma 2).
//!
//! Lemma 2: at `x = Θ̃(√(n·log n/(Φ·t_mix)))` walks of length
//! `c·t_mix·log n`, some maximum-ID walk visits every candidate's
//! broadcast territory whp — operationally, every losing candidate
//! observes the winner's ID and exactly one flag stays up.
//!
//! Two regimes:
//!
//! 1. **Paper regime**: territories and walks at the protocol's own
//!    parameters. At simulatable sizes the paper's budgets are generous
//!    (territories overlap into full coverage), so the hit rate must be
//!    ≈ 1.00 across the sweep — the Lemma 2 claim itself.
//! 2. **Stress regime**: territories pinned small (target 4, ~16 nodes
//!    after overshoot), walk length cut to 1/16 of the paper's, only 3
//!    candidates. Now single walks miss; sweeping the walk count `x`
//!    exposes the knee that the paper's `x` protects against.
//!
//! Usage: `fig_walks [--quick]`

use ale_bench::Table;
use ale_congest::{congest_budget, Network};
use ale_core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale_graph::{GraphProps, NetworkKnowledge, Topology};

struct RegimeResult {
    hits: usize,
    total: usize,
    successes: usize,
}

#[allow(clippy::too_many_arguments)]
fn run_regime(
    graph: &ale_graph::Graph,
    cfg: &IrrevocableConfig,
    budget: usize,
    candidates: usize,
    x: u64,
    threshold: Option<u64>,
    walk_len: u64,
    trials: u64,
) -> RegimeResult {
    let n = graph.n();
    let mut res = RegimeResult {
        hits: 0,
        total: 0,
        successes: 0,
    };
    for seed in 0..trials {
        let mut params = cfg.protocol_params(1).expect("params");
        params.x = x;
        if let Some(t) = threshold {
            params.final_threshold = t;
        }
        params.walk_rounds = walk_len;
        let step = n / candidates;
        let procs: Vec<IrrevocableProcess> = (0..n)
            .map(|v| {
                let mut p = params;
                p.degree = graph.degree(v);
                let is_cand = v % step == 0 && v / step < candidates;
                let id = if is_cand {
                    1_000_000 + (v / step) as u64
                } else {
                    1 + v as u64
                };
                IrrevocableProcess::with_candidacy(p, id, is_cand)
            })
            .collect();
        let mut net = Network::new(graph, procs, seed, budget).expect("network");
        let total_rounds =
            params.broadcast_rounds + params.walk_rounds + params.converge_rounds + 1;
        net.run_to_halt(total_rounds + 4).expect("run");
        let verdicts = net.outputs();
        let max_id = 1_000_000 + candidates as u64 - 1;
        let mut leaders = 0;
        for v in verdicts.iter().filter(|v| v.candidate) {
            res.total += 1;
            if v.observed_walk_max == Some(max_id) {
                res.hits += 1;
            }
            if v.leader {
                leaders += 1;
            }
        }
        let winner_ok = verdicts.iter().any(|v| v.leader && v.id == max_id);
        if leaders == 1 && winner_ok {
            res.successes += 1;
        }
    }
    res
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials: u64 = if quick { 5 } else { 15 };

    println!("# E-L2: walk hitting rates (Lemma 2)\n");

    for topo in [
        Topology::RandomRegular { n: 128, d: 4 },
        Topology::Grid2d {
            rows: 12,
            cols: 12,
            torus: true,
        },
    ] {
        let graph = topo.build(9).expect("graph");
        let props = GraphProps::compute_for(&graph, &topo).expect("props");
        let knowledge = NetworkKnowledge::from_props(&props);
        let cfg = IrrevocableConfig::from_knowledge(knowledge);
        let budget = congest_budget(knowledge.n, cfg.congest_factor);
        let paper_x = cfg.x();

        println!(
            "## {topo} (n={}, t_mix={}, phi={:.4}, paper x={paper_x})\n",
            graph.n(),
            knowledge.tmix,
            knowledge.phi
        );

        // Regime 1: the paper's own parameters (6 candidates).
        println!("### Paper regime (expect hit rate 1.00 — the Lemma 2 claim)\n");
        let mut t1 = Table::new(["x multiplier", "x", "hit rate", "election success"]);
        for mult in [0.25, 0.5, 1.0, 2.0] {
            let x = ((paper_x as f64 * mult).ceil() as u64).max(1);
            let r = run_regime(
                &graph,
                &cfg,
                budget,
                6,
                x,
                None,
                cfg.walk_rounds(),
                trials,
            );
            t1.push_row([
                format!("{mult}"),
                x.to_string(),
                format!("{:.2}", r.hits as f64 / r.total.max(1) as f64),
                format!("{}/{trials}", r.successes),
            ]);
            eprintln!("{topo}: paper mult={mult} done");
        }
        println!("{}", t1.to_markdown());

        // Regime 2: stressed — small pinned territories, short walks.
        println!(
            "### Stress regime (territory target 4, walk length x1/16, 3 candidates)\n"
        );
        let starved_len = (cfg.walk_rounds() / 16).max(4);
        let mut t2 = Table::new(["x", "hit rate", "election success"]);
        for x in [1u64, 2, 4, 8, 16] {
            let r = run_regime(&graph, &cfg, budget, 3, x, Some(4), starved_len, trials);
            t2.push_row([
                x.to_string(),
                format!("{:.2}", r.hits as f64 / r.total.max(1) as f64),
                format!("{}/{trials}", r.successes),
            ]);
            eprintln!("{topo}: stress x={x} done");
        }
        println!("{}", t2.to_markdown());
    }
    println!(
        "Reproduction criterion: paper-regime hit rates ≈ 1.00 everywhere; the\n\
         stress regime shows hit rates rising with x — the budget Lemma 2 sizes."
    );
}
