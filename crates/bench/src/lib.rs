//! # ale-bench — experiment harness
//!
//! Regenerates every table and figure of Kowalski & Mosteiro (ICDCS 2021)
//! plus the lemma-level experiments listed in `DESIGN.md` §5. Since the
//! `ale-lab` subsystem landed, each experiment is a registered
//! [`ale_lab::Scenario`]; the binaries in `src/bin/` are thin wrappers
//! over `ale-lab run <scenario>`, kept for muscle memory:
//!
//! | binary | scenario | experiment |
//! |--------|----------|------------|
//! | `table1` | `table1` | Table 1 shootout: this work vs baselines |
//! | `fig_scaling` | `scaling` | message-complexity exponents (Theorem 1) |
//! | `fig_revocable` | `revocable` | revocable LE cost growth (Theorem 3 / Cor. 1) |
//! | `fig_impossibility` | `impossibility` | split-brain series (Theorem 2) |
//! | `fig_cautious` | `cautious` | cautious-broadcast cost/coverage (Lemma 1) |
//! | `fig_walks` | `walks` | walk hitting rates vs `x` (Lemma 2) |
//! | `fig_diffusion` | `diffusion` | diffusion convergence (Lemmas 3–4) |
//! | `fig_thresholds` | `thresholds` | `τ(k)` detection (Lemma 5) |
//! | `fig_certification` | `certification` | white-iteration counting (Lemmas 6–8) |
//! | `fig_phases` | `phases` | per-phase message anatomy |
//! | `ablation_cautious` | `ablation-cautious` | report-discipline ablation |
//!
//! The shared plumbing ([`runners`], [`table`], [`fit`], the fleet) moved
//! into `ale-lab`; this crate re-exports it so historical paths keep
//! working. Criterion benches (`benches/`) time the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod runners;
pub mod sweep;
pub mod table;

pub use fit::{exponent_close, power_fit, PowerFit};
pub use runners::{Algorithm, CellSummary, GraphContext};
pub use table::Table;
