//! # ale-bench — experiment harness
//!
//! Regenerates every table and figure of Kowalski & Mosteiro (ICDCS 2021)
//! plus the lemma-level experiments listed in `DESIGN.md` §5. The library
//! holds the shared plumbing; each experiment is a binary in `src/bin/`:
//!
//! | binary | experiment |
//! |--------|------------|
//! | `table1` | Table 1 shootout: this work vs baselines across families |
//! | `fig_scaling` | message-complexity exponents (Theorem 1 shape) |
//! | `fig_revocable` | revocable LE cost growth (Theorem 3 / Corollary 1) |
//! | `fig_impossibility` | split-brain series (Theorem 2, Figures 1–2) |
//! | `fig_cautious` | cautious-broadcast cost/coverage (Lemma 1) |
//! | `fig_walks` | walk hitting rates vs `x` (Lemma 2) |
//! | `fig_diffusion` | diffusion convergence vs `(2/φ²)·log(n/γ)` (Lemmas 3–4) |
//! | `fig_thresholds` | `τ(k)` detection (Lemma 5) |
//! | `fig_certification` | white-iteration counting (Lemmas 6–8) |
//!
//! Criterion benches (`benches/`) time the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod runners;
pub mod sweep;
pub mod table;

pub use fit::{exponent_close, power_fit, PowerFit};
pub use runners::{Algorithm, CellSummary, GraphContext};
pub use table::Table;
