//! Log–log regression — moved to `ale-lab`; re-exported here for the
//! historical `ale_bench::fit` paths.

pub use ale_lab::fit::*;
