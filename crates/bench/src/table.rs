//! Table/series emitters — moved to `ale-lab`; re-exported here for the
//! historical `ale_bench::table` paths.

pub use ale_lab::table::*;
