//! Algorithm drivers — moved to `ale-lab`; re-exported here for the
//! historical `ale_bench::runners` paths.

pub use ale_lab::runners::*;
