//! Zero-dependency structured telemetry for the leader-election workspace.
//!
//! The crate is a thin event layer: code under measurement emits
//! [`Event`]s — completed [`Span`]s, monotonic [`Counter`] samples, and
//! log-bucketed [`Histogram`] snapshots — into a single process-global
//! [`Sink`] installed with [`install`]. When no sink is installed the
//! entire layer collapses to one relaxed atomic load per call site
//! ([`enabled`]), so instrumented hot paths cost nothing measurable in
//! the default configuration.
//!
//! Serialization is deliberately *not* part of this crate: a [`Sink`]
//! receives structured [`Event`] values and decides how to encode them.
//! The lab crate provides a JSONL sink that shares its hand-rolled JSON
//! encoder with the rest of the CLI; tests use [`MemorySink`].
//!
//! # Span lifecycle
//!
//! Spans are emitted on *completion* (guard drop), carrying their
//! wall-clock duration. Nesting is tracked per thread: a span begun while
//! another is open records that span's id as its `parent`, so a
//! `sweep → point → trial` hierarchy can be reconstructed offline.
//!
//! ```
//! let (sink, events) = ale_telemetry::MemorySink::new();
//! ale_telemetry::install(Box::new(sink));
//! {
//!     let _sweep = ale_telemetry::Span::begin("sweep").attr("points", 4u64);
//!     let _trial = ale_telemetry::Span::begin("trial");
//! } // inner drops first, then outer
//! ale_telemetry::uninstall();
//! let events = events.lock().unwrap();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].name, "trial");
//! assert_eq!(events[1].name, "sweep");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// A typed attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    U64(u64),
    /// Signed integer attribute.
    I64(i64),
    /// Floating-point attribute.
    F64(f64),
    /// String attribute.
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span: a named region of wall-clock time.
    Span {
        /// Process-unique span id (allocation order).
        id: u64,
        /// Id of the span that was open on this thread when this span
        /// began, if any.
        parent: Option<u64>,
        /// Wall-clock duration of the span in microseconds.
        wall_us: u64,
    },
    /// A monotonic counter sample (current cumulative value).
    Counter {
        /// The counter's value at emission time.
        value: u64,
    },
    /// A histogram snapshot with power-of-two buckets.
    Hist {
        /// `(upper_bound, count)` pairs for every non-empty bucket; a
        /// value `v` lands in the first bucket with `v <= upper_bound`.
        buckets: Vec<(u64, u64)>,
    },
}

/// One telemetry event, as handed to the installed [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span name, counter name, histogram name).
    pub name: String,
    /// Microseconds since the first telemetry call in this process.
    pub ts_us: u64,
    /// The measurement payload.
    pub kind: EventKind,
    /// Ordered key/value attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

// ---------------------------------------------------------------------------
// Global sink
// ---------------------------------------------------------------------------

/// Receives emitted events. Implementations must not call back into this
/// crate's emission API (the global sink lock is held during `record`).
pub trait Sink: Send {
    /// Handles one event.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output; called by [`uninstall`].
    fn flush(&mut self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);
static START: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Whether a sink is currently installed. One relaxed atomic load — this
/// is the disabled-path cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event receiver and enables
/// emission. Replaces (and flushes) any previously installed sink.
pub fn install(sink: Box<dyn Sink>) {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        old.flush();
    }
    *guard = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables emission, flushes, and returns the installed sink (if any).
pub fn uninstall() -> Option<Box<dyn Sink>> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut sink = guard.take();
    if let Some(s) = sink.as_mut() {
        s.flush();
    }
    sink
}

/// Microseconds since the first telemetry call in this process.
fn ts_us() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Hands `event` to the installed sink; a no-op when disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = guard.as_mut() {
        sink.record(&event);
    }
}

/// Emits a counter-style event with an explicit value (for one-off
/// samples that don't warrant a static [`Counter`]).
pub fn emit_counter(name: impl Into<String>, value: u64, attrs: Vec<(String, AttrValue)>) {
    if !enabled() {
        return;
    }
    emit(Event {
        name: name.into(),
        ts_us: ts_us(),
        kind: EventKind::Counter { value },
        attrs,
    });
}

/// Emits a completed span whose duration was measured externally — for
/// events reconstructed after the fact (e.g. a harness replaying trial
/// timings in deterministic order after a parallel run). Allocates a
/// fresh id and parents the span under this thread's innermost open
/// [`Span`], if any.
pub fn emit_span(name: impl Into<String>, wall_us: u64, attrs: Vec<(String, AttrValue)>) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    emit(Event {
        name: name.into(),
        ts_us: ts_us(),
        kind: EventKind::Span {
            id,
            parent,
            wall_us,
        },
        attrs,
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanInner {
    name: String,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
}

/// RAII guard for a named region of wall-clock time. Created with
/// [`Span::begin`]; the completed-span event is emitted when the guard
/// drops (or [`Span::end`] is called). When telemetry is disabled the
/// guard is inert and costs one atomic load.
pub struct Span(Option<SpanInner>);

impl Span {
    /// Opens a span. Inert (and free) when telemetry is disabled.
    pub fn begin(name: impl Into<String>) -> Span {
        if !enabled() {
            return Span(None);
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        Span(Some(SpanInner {
            name: name.into(),
            id,
            parent,
            start: Instant::now(),
            attrs: Vec::new(),
        }))
    }

    /// Attaches an attribute (builder style).
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Attaches an attribute in place.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) {
        if let Some(inner) = self.0.as_mut() {
            inner.attrs.push((key.into(), value.into()));
        }
    }

    /// This span's id, if live (for cross-thread parent linking).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.id)
    }

    /// Ends the span now, emitting its event.
    pub fn end(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&id| id == inner.id) {
                s.remove(pos);
            }
        });
        emit(Event {
            name: inner.name,
            ts_us: ts_us(),
            kind: EventKind::Span {
                id: inner.id,
                parent: inner.parent,
                wall_us: inner.start.elapsed().as_micros() as u64,
            },
            attrs: inner.attrs,
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Span({} id={})", inner.name, inner.id),
            None => write!(f, "Span(inert)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A monotonic counter. Incrementing is always live (one atomic add) so
/// progress/ETA machinery can read it even with telemetry disabled;
/// [`Counter::sample`] emits the current value only when enabled.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero. `const` so counters can be statics.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's name, as given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`, returning the new cumulative value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current cumulative value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Emits a counter event with the current value.
    pub fn sample(&self) {
        emit_counter(self.name, self.value(), Vec::new());
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A power-of-two-bucketed histogram of `u64` samples: bucket `k ≥ 1`
/// counts values in `[2^(k-1), 2^k)`, bucket 0 counts zeros. Cheap to
/// record (a shift and an increment) and compact to serialize.
#[derive(Debug, Clone)]
pub struct Histogram {
    name: String,
    buckets: [u64; 65],
    count: u64,
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new(name: impl Into<String>) -> Histogram {
        Histogram {
            name: name.into(),
            buckets: [0; 65],
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in increasing
    /// bound order. Bucket `k`'s upper bound is `2^k - 1` (inclusive).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| {
                let bound = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
                (bound, c)
            })
            .collect()
    }

    /// Emits a histogram snapshot event (no-op when disabled or empty).
    pub fn sample(&self, attrs: Vec<(String, AttrValue)>) {
        if !enabled() || self.count == 0 {
            return;
        }
        emit(Event {
            name: self.name.clone(),
            ts_us: ts_us(),
            kind: EventKind::Hist {
                buckets: self.buckets(),
            },
            attrs,
        });
    }
}

/// A thread-shareable [`Histogram`]: same power-of-two buckets, but
/// every slot is an atomic so concurrent recorders need no lock, and
/// construction is `const` so histograms can live in statics (the
/// serve-path latency metrics do). Counts are `Relaxed` — snapshots may
/// lag in-flight records by a few samples, which is fine for metrics.
#[derive(Debug)]
pub struct SharedHistogram {
    name: &'static str,
    buckets: [AtomicU64; 65],
    count: AtomicU64,
}

impl SharedHistogram {
    /// A new, empty histogram. `const` so histograms can be statics.
    pub const fn new(name: &'static str) -> SharedHistogram {
        SharedHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; 65],
            count: AtomicU64::new(0),
        }
    }

    /// The histogram's name, as given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (two relaxed atomic increments).
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in increasing
    /// bound order — the same encoding as [`Histogram::buckets`].
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(k, c)| {
                let c = c.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let bound = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
                Some((bound, c))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());
static HISTOGRAMS: Mutex<Vec<&'static SharedHistogram>> = Mutex::new(Vec::new());

/// Registers a static counter for [`snapshot`] export. Registering the
/// same counter again is a no-op, so registration can sit on any
/// startup path without guards.
pub fn register_counter(counter: &'static Counter) {
    let mut reg = COUNTERS.lock().unwrap();
    if !reg.iter().any(|c| std::ptr::eq(*c, counter)) {
        reg.push(counter);
    }
}

/// Registers a static shared histogram for [`snapshot`] export.
/// Idempotent, like [`register_counter`].
pub fn register_histogram(hist: &'static SharedHistogram) {
    let mut reg = HISTOGRAMS.lock().unwrap();
    if !reg.iter().any(|h| std::ptr::eq(*h, hist)) {
        reg.push(hist);
    }
}

/// One metric's current value, as captured by [`snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// A registered [`Counter`]'s cumulative value.
    Counter {
        /// The counter's name.
        name: &'static str,
        /// Cumulative value at snapshot time.
        value: u64,
    },
    /// A registered [`SharedHistogram`]'s buckets.
    Histogram {
        /// The histogram's name.
        name: &'static str,
        /// Total samples at snapshot time.
        count: u64,
        /// Non-empty `(upper_bound, count)` buckets, increasing.
        buckets: Vec<(u64, u64)>,
    },
}

/// Captures every registered counter and histogram, in registration
/// order (counters first). This is the `/metrics` export path: always
/// live, independent of whether a [`Sink`] is installed.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let mut out = Vec::new();
    for c in COUNTERS.lock().unwrap().iter() {
        out.push(MetricSnapshot::Counter {
            name: c.name(),
            value: c.value(),
        });
    }
    for h in HISTOGRAMS.lock().unwrap().iter() {
        out.push(MetricSnapshot::Histogram {
            name: h.name(),
            count: h.count(),
            buckets: h.buckets(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Test sink
// ---------------------------------------------------------------------------

/// A sink that appends every event to a shared vector — the crate's
/// reference sink for tests.
#[derive(Debug)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates the sink and a handle to its (shared) event buffer.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<Event>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            events,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests that install one must not
    /// overlap. (cargo runs tests on parallel threads by default.)
    static SERIAL: Mutex<()> = Mutex::new(());

    fn with_memory_sink(f: impl FnOnce()) -> Vec<Event> {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (sink, events) = MemorySink::new();
        install(Box::new(sink));
        f();
        uninstall();
        let events = events.lock().unwrap();
        events.clone()
    }

    #[test]
    fn disabled_emits_nothing() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let span = Span::begin("ghost");
        assert!(span.id().is_none());
        drop(span);
        emit_counter("ghost", 1, Vec::new());
        // Nothing to observe directly — the point is no panic and no sink.
    }

    #[test]
    fn span_nesting_records_parent() {
        let events = with_memory_sink(|| {
            let outer = Span::begin("outer");
            let outer_id = outer.id().unwrap();
            {
                let inner = Span::begin("inner").attr("k", 3u64);
                assert!(inner.id().unwrap() > outer_id);
            }
            drop(outer);
        });
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "inner");
        let EventKind::Span { parent, .. } = events[0].kind else {
            panic!("expected span");
        };
        let EventKind::Span { id: outer_id, .. } = events[1].kind else {
            panic!("expected span");
        };
        assert_eq!(parent, Some(outer_id));
        assert_eq!(events[0].attrs, vec![("k".to_string(), AttrValue::U64(3))]);
        assert_eq!(events[1].name, "outer");
    }

    #[test]
    fn counter_accumulates_and_samples() {
        static TRIALS: Counter = Counter::new("trials");
        let before = TRIALS.value();
        let events = with_memory_sink(|| {
            TRIALS.add(2);
            TRIALS.add(3);
            TRIALS.sample();
        });
        assert_eq!(TRIALS.value(), before + 5);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::Counter { value } if value == before + 5
        ));
    }

    #[test]
    fn counter_counts_even_when_disabled() {
        let c = Counter::new("offline");
        c.add(7);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        // 0 → bucket 0 (bound 0); 1 → bucket 1 (bound 1);
        // 2,3 → bucket 2 (bound 3); 1024 → bucket 11 (bound 2047).
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn histogram_sample_emits_snapshot() {
        let events = with_memory_sink(|| {
            let mut h = Histogram::new("wall");
            h.record(5);
            h.sample(vec![("phase".to_string(), AttrValue::Str("x".into()))]);
            Histogram::new("empty").sample(Vec::new());
        });
        assert_eq!(events.len(), 1, "empty histogram must not emit");
        assert!(matches!(events[0].kind, EventKind::Hist { .. }));
    }

    #[test]
    fn install_replaces_and_flushes() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let (a, a_events) = MemorySink::new();
        let (b, b_events) = MemorySink::new();
        install(Box::new(a));
        emit_counter("one", 1, Vec::new());
        install(Box::new(b));
        emit_counter("two", 2, Vec::new());
        uninstall();
        assert_eq!(a_events.lock().unwrap().len(), 1);
        assert_eq!(b_events.lock().unwrap().len(), 1);
        assert!(!enabled());
    }

    #[test]
    fn shared_histogram_matches_owned_buckets() {
        static SHARED: SharedHistogram = SharedHistogram::new("shared");
        let mut owned = Histogram::new("owned");
        for v in [0, 1, 2, 3, 7, 8, 1024, u64::MAX] {
            SHARED.record(v);
            owned.record(v);
        }
        assert_eq!(SHARED.count(), owned.count());
        assert_eq!(SHARED.buckets(), owned.buckets());
        assert_eq!(SHARED.name(), "shared");
    }

    #[test]
    fn registry_snapshots_in_registration_order_and_dedupes() {
        static REQS: Counter = Counter::new("reg_requests");
        static LAT: SharedHistogram = SharedHistogram::new("reg_latency");
        register_counter(&REQS);
        register_counter(&REQS);
        register_histogram(&LAT);
        register_histogram(&LAT);
        REQS.add(3);
        LAT.record(5);
        let snap = snapshot();
        let reqs: Vec<_> = snap
            .iter()
            .filter(
                |m| matches!(m, MetricSnapshot::Counter { name, .. } if *name == "reg_requests"),
            )
            .collect();
        assert_eq!(reqs.len(), 1, "duplicate registration must dedupe");
        assert_eq!(
            reqs[0],
            &MetricSnapshot::Counter {
                name: "reg_requests",
                value: 3
            }
        );
        let lats: Vec<_> = snap
            .iter()
            .filter(
                |m| matches!(m, MetricSnapshot::Histogram { name, .. } if *name == "reg_latency"),
            )
            .collect();
        assert_eq!(lats.len(), 1);
        assert_eq!(
            lats[0],
            &MetricSnapshot::Histogram {
                name: "reg_latency",
                count: 1,
                buckets: vec![(7, 1)]
            }
        );
    }
}
