//! Integration tests for the revocable protocol: stabilization, explicit
//! agreement, revocation dynamics, and horizon behavior.

use ale::core::revocable::{run_revocable, stabilized, LeaderRecord, RevocableParams};
use ale::graph::Topology;

fn fast_params() -> RevocableParams {
    // Scaled mode (see DESIGN.md): same functional forms, tractable sizes.
    RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0)
}

#[test]
fn stabilizes_with_unique_leader_across_topologies() {
    let topologies = [
        Topology::Complete { n: 6 },
        Topology::Cycle { n: 6 },
        Topology::Path { n: 5 },
        Topology::Star { n: 6 },
        Topology::Hypercube { dim: 3 },
    ];
    for topo in topologies {
        let g = topo.build(0).expect("graph");
        let mut ok = 0;
        for seed in 0..5 {
            let r = run_revocable(&g, &fast_params(), seed, 16).expect("run");
            if r.stabilized && r.outcome.leader_count() == 1 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "{topo}: only {ok}/5 stabilized-unique runs");
    }
}

#[test]
fn explicit_election_every_node_knows_the_leader() {
    let g = Topology::Complete { n: 8 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 2, 16).expect("run");
    assert!(r.stabilized);
    let views: Vec<Option<LeaderRecord>> = r.verdicts.iter().map(|v| v.view).collect();
    assert!(views[0].is_some());
    assert!(
        views.windows(2).all(|w| w[0] == w[1]),
        "explicit LE requires global agreement on the leader record"
    );
    // The leader's own record is the agreed one.
    let leader = r.outcome.unique_leader().expect("unique");
    let lv = &r.verdicts[leader];
    assert_eq!(
        views[0],
        Some(LeaderRecord::new(lv.cert.unwrap(), lv.id.unwrap()))
    );
}

#[test]
fn leader_record_ordering_largest_cert_smallest_id() {
    let g = Topology::Cycle { n: 6 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 7, 16).expect("run");
    assert!(r.stabilized);
    let best = r.verdicts[0].view.expect("view");
    for v in &r.verdicts {
        let own = LeaderRecord::new(v.cert.unwrap(), v.id.unwrap());
        assert!(
            !own.beats(&best),
            "record {own:?} beats the agreed leader {best:?}"
        );
    }
}

#[test]
fn stabilization_is_absorbing() {
    // Run past the stabilization point; the view must not change.
    let g = Topology::Complete { n: 6 }.build(0).expect("graph");
    let r1 = run_revocable(&g, &fast_params(), 3, 8).expect("run");
    let r2 = run_revocable(&g, &fast_params(), 3, 16).expect("run");
    if r1.stabilized && r2.stabilized {
        assert_eq!(
            r1.verdicts[0].view, r2.verdicts[0].view,
            "longer horizon must agree with the earlier stable view"
        );
    }
}

#[test]
fn certificates_do_not_exceed_horizon() {
    let g = Topology::Complete { n: 6 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 1, 8).expect("run");
    assert!(
        r.final_k <= 16,
        "estimate may exceed max_k by one doubling only"
    );
    for v in &r.verdicts {
        if let Some(c) = v.cert {
            assert!(c <= 8, "certificate {c} beyond the executed horizon");
        }
    }
}

#[test]
fn messages_are_all_to_all_per_round() {
    // Algorithm 7 broadcasts to every neighbor every round: messages must
    // equal 2m per simulator round (within the final partial round).
    let g = Topology::Cycle { n: 5 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 1, 8).expect("run");
    let m2 = (2 * g.m()) as u64;
    let rounds = r.outcome.metrics.rounds;
    let msgs = r.outcome.metrics.messages;
    assert!(
        msgs <= m2 * rounds && msgs >= m2 * rounds.saturating_sub(4),
        "msgs {msgs} vs 2m·rounds {}",
        m2 * rounds
    );
}

#[test]
fn congest_rounds_charge_bit_serialized_potentials() {
    // Potentials exceed the CONGEST budget in later diffusion rounds, so
    // charged rounds must strictly exceed simulator rounds.
    let g = Topology::Complete { n: 4 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 1, 8).expect("run");
    assert!(
        r.outcome.metrics.congest_rounds > r.outcome.metrics.rounds,
        "bit-by-bit serialization must be charged: {} vs {}",
        r.outcome.metrics.congest_rounds,
        r.outcome.metrics.rounds
    );
}

#[test]
fn stabilized_predicate_rejects_divergent_views() {
    let g = Topology::Complete { n: 4 }.build(0).expect("graph");
    let r = run_revocable(&g, &fast_params(), 5, 16).expect("run");
    assert!(r.stabilized);
    let mut verdicts = r.verdicts.clone();
    assert!(stabilized(&verdicts));
    verdicts[0].view = Some(LeaderRecord::new(9999, 1));
    assert!(!stabilized(&verdicts));
}

#[test]
fn deterministic_under_fixed_seed() {
    let g = Topology::Hypercube { dim: 3 }.build(0).expect("graph");
    let a = run_revocable(&g, &fast_params(), 4, 16).expect("run");
    let b = run_revocable(&g, &fast_params(), 4, 16).expect("run");
    assert_eq!(a, b);
}

#[test]
fn unscaled_paper_parameters_work_on_tiny_graph() {
    let g = Topology::Complete { n: 3 }.build(0).expect("graph");
    let params = RevocableParams::paper_blind(1.0, 0.2);
    let r = run_revocable(&g, &params, 0, 8).expect("run");
    assert!(r.stabilized, "paper-exact run must stabilize on K3");
    assert_eq!(r.outcome.leader_count(), 1);
}

#[test]
fn revocations_are_observed_and_counted() {
    // With several nodes choosing IDs at the same estimate, most nodes
    // adopt some record and later revoke it for a better one at least once
    // somewhere in the network.
    let g = Topology::Complete { n: 8 }.build(0).expect("graph");
    let mut total_revocations = 0u64;
    for seed in 0..6 {
        let r = run_revocable(&g, &fast_params(), seed, 16).expect("run");
        total_revocations += r.verdicts.iter().map(|v| v.revocations).sum::<u64>();
        // Everyone ends agreeing regardless of how many revocations it took.
        if r.stabilized {
            let first = r.verdicts[0].view;
            assert!(r.verdicts.iter().all(|v| v.view == first));
        }
    }
    assert!(
        total_revocations > 0,
        "revocable elections should exhibit at least one revocation across seeds"
    );
}

#[test]
fn lockstep_estimates_across_nodes() {
    // The schedule is a function of k only, so all nodes must share the
    // same estimate at all times — spot-check via the final verdicts of
    // runs stopped at arbitrary points (the horizon).
    for max_k in [2u64, 4, 8] {
        let g = Topology::Cycle { n: 6 }.build(0).expect("graph");
        let r = run_revocable(&g, &fast_params(), 9, max_k).expect("run");
        let ks: Vec<u64> = r.verdicts.iter().map(|v| v.k).collect();
        assert!(
            ks.windows(2).all(|w| w[0] == w[1]),
            "estimates diverged: {ks:?}"
        );
    }
}
