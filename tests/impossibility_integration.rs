//! Integration tests for Theorem 2's empirical companion: split-brain under
//! wrong size beliefs, and the revocable protocol as the cure.

use ale::core::revocable::{run_revocable, RevocableParams};
use ale::graph::generators;
use ale::impossibility::{split_brain_trial, PumpingLayout};

#[test]
fn correct_belief_control() {
    for seed in 0..4 {
        let t = split_brain_trial(8, 8, seed).expect("trial");
        assert_eq!(t.leaders.len(), 1, "seed {seed}: control failed");
    }
}

#[test]
fn wrong_belief_splits_the_ring() {
    let mut splits = 0;
    for seed in 0..4 {
        let t = split_brain_trial(8, 256, seed).expect("trial");
        if t.split_brain() {
            splits += 1;
        }
    }
    assert!(splits >= 3, "only {splits}/4 split-brain trials");
}

#[test]
fn leaders_far_apart_in_split_runs() {
    // The split leaders live in far-apart regions — the witness picture.
    let t = split_brain_trial(8, 512, 1).expect("trial");
    assert!(t.split_brain(), "expected a split at 64x blow-up");
    // Some pair of leaders must be farther apart than the protocol's
    // information radius would ever allow interaction across.
    let max_gap = t.leaders.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    assert!(
        max_gap > 16,
        "leaders {:?} are suspiciously clustered",
        t.leaders
    );
}

#[test]
fn revocable_protocol_fixes_rings_without_knowledge() {
    // The revocable protocol's cost on cycles is the full force of
    // Corollary 1 (the diffusion term grows like (4n)²/i(G)² = Θ(n⁴) on
    // rings), so the contrast demo runs on the largest tractable ring:
    // C12, whose stabilizing estimate is k* = 8. Larger rings are
    // documented as out of simulation reach in EXPERIMENTS.md — that cost
    // *is* the paper's Theorem 3/Corollary 1 statement, reproduced.
    // Seed 0 takes the common path (choose at k ≤ 8, stabilize in ~50k
    // rounds); occasional seeds abstain at k = 8 and pay one k = 16 ladder
    // (~6M rounds) before the horizon drain stabilizes them — correct but
    // too slow for the default suite (validated in release calibration).
    let ring = generators::cycle(12).expect("cycle");
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
    let r = run_revocable(&ring, &params, 0, 8).expect("run");
    assert!(r.stabilized, "revocable run must stabilize on C12");
    assert_eq!(
        r.outcome.leader_count(),
        1,
        "no knowledge needed for a unique (revocable) leader"
    );
}

#[test]
fn witness_geometry_matches_protocol_reach() {
    // The witness construction ties T(n) to the protocol's stop time:
    // verify the layout accepts the actual round budget of the believed
    // protocol as its T.
    use ale::core::irrevocable::IrrevocableConfig;
    use ale::impossibility::believed_cycle_knowledge;
    let n0 = 8usize;
    let cfg = IrrevocableConfig::from_knowledge(believed_cycle_knowledge(n0));
    let t = cfg.total_rounds() as usize;
    let block = 4 * t + 2 * n0;
    let layout = PumpingLayout::new(n0, t, 3 * block).expect("layout");
    assert_eq!(layout.witness_count(), 3);
    // Witnesses' cores are 2n0 nodes flanked by T-node buffers: no
    // information can cross a buffer within T rounds.
    let w = layout.witness(0);
    assert_eq!(w.core(layout.big_n).len(), 2 * n0);
    assert_eq!(w.len, 2 * t + 2 * n0);
}
