//! Implicit-vs-explicit topology equivalence: the computed-neighbor
//! backend must be indistinguishable from the explicit CSR builders it
//! replaces above `IMPLICIT_THRESHOLD`.
//!
//! The explicit generators (`generators::cycle` / `grid2d` / `hypercube`)
//! always build CSR graphs, so they serve as the oracle here; the implicit
//! side is `Graph::from_implicit`. Equivalence is checked port-by-port —
//! same targets, same reverse ports, same degrees — plus BFS structure
//! (diameter on small instances, sampled eccentricities at n ≈ 10⁴).

use ale::graph::{generators, Graph, ImplicitTopology};

/// Asserts full port-map equality: degree, port targets, reverse ports,
/// the fused lookup, and neighbor iteration order for every node.
fn assert_port_maps_equal(implicit: &Graph, explicit: &Graph, label: &str) {
    assert!(implicit.is_implicit(), "{label}: expected implicit backend");
    assert!(!explicit.is_implicit(), "{label}: expected explicit oracle");
    assert_eq!(implicit.n(), explicit.n(), "{label}: n");
    assert_eq!(implicit.m(), explicit.m(), "{label}: m");
    assert_eq!(
        implicit.max_degree(),
        explicit.max_degree(),
        "{label}: max_degree"
    );
    for v in 0..explicit.n() {
        let d = explicit.degree(v);
        assert_eq!(implicit.degree(v), d, "{label}: degree({v})");
        for p in 0..d {
            let target = explicit.port_target(v, p);
            let back = explicit.reverse_port(v, p);
            assert_eq!(
                implicit.port_target(v, p),
                target,
                "{label}: port_target({v}, {p})"
            );
            assert_eq!(
                implicit.reverse_port(v, p),
                back,
                "{label}: reverse_port({v}, {p})"
            );
            assert_eq!(
                implicit.port_and_reverse(v, p),
                (target, back),
                "{label}: port_and_reverse({v}, {p})"
            );
        }
        assert!(
            implicit.neighbors(v).eq(explicit.neighbors(v)),
            "{label}: neighbors({v})"
        );
    }
    assert_eq!(implicit, explicit, "{label}: structural equality");
}

#[test]
fn ring_matches_explicit_cycle() {
    for n in [3, 4, 7, 100, 1021, 10_000] {
        let implicit = Graph::from_implicit(ImplicitTopology::Ring { n }).unwrap();
        let explicit = generators::cycle(n).unwrap();
        assert_port_maps_equal(&implicit, &explicit, &format!("ring n={n}"));
    }
}

#[test]
fn torus_matches_explicit_grid() {
    for (rows, cols) in [(3, 3), (3, 5), (4, 4), (7, 11), (31, 17), (100, 100)] {
        let implicit = Graph::from_implicit(ImplicitTopology::Torus { rows, cols }).unwrap();
        let explicit = generators::grid2d(rows, cols, true).unwrap();
        assert_port_maps_equal(&implicit, &explicit, &format!("torus {rows}x{cols}"));
    }
}

#[test]
fn hypercube_matches_explicit_builder() {
    for dim in [1, 2, 3, 5, 9, 13] {
        let implicit = Graph::from_implicit(ImplicitTopology::Hypercube { dim }).unwrap();
        let explicit = generators::hypercube(dim).unwrap();
        assert_port_maps_equal(&implicit, &explicit, &format!("hypercube d={dim}"));
    }
}

#[test]
fn ccc_matches_its_materialization() {
    // CCC has no independent edge-list oracle (its port order is defined by
    // the implicit formulas), so the check is implicit vs materialized CSR.
    for dim in [3, 4, 6, 9] {
        let topo = ImplicitTopology::Ccc { dim };
        let implicit = Graph::from_implicit(topo).unwrap();
        let explicit = topo.materialize().unwrap();
        assert_port_maps_equal(&implicit, &explicit, &format!("ccc d={dim}"));
        assert!(explicit.is_connected());
    }
}

#[test]
fn bfs_structure_matches_on_small_instances() {
    let cases: Vec<(ImplicitTopology, Graph)> = vec![
        (
            ImplicitTopology::Ring { n: 31 },
            generators::cycle(31).unwrap(),
        ),
        (
            ImplicitTopology::Torus { rows: 6, cols: 9 },
            generators::grid2d(6, 9, true).unwrap(),
        ),
        (
            ImplicitTopology::Hypercube { dim: 6 },
            generators::hypercube(6).unwrap(),
        ),
    ];
    for (topo, explicit) in cases {
        let implicit = Graph::from_implicit(topo).unwrap();
        assert!(implicit.is_connected());
        assert_eq!(
            implicit.diameter(),
            explicit.diameter(),
            "diameter ({topo:?})"
        );
    }
}

#[test]
fn bfs_distances_match_at_ten_thousand_nodes() {
    // Full diameter is O(n·m); at n = 10⁴ sample a few BFS sources instead.
    let implicit = Graph::from_implicit(ImplicitTopology::Torus {
        rows: 100,
        cols: 100,
    })
    .unwrap();
    let explicit = generators::grid2d(100, 100, true).unwrap();
    for src in [0, 17, 4999, 9999] {
        assert_eq!(
            implicit.bfs_distances(src),
            explicit.bfs_distances(src),
            "bfs from {src}"
        );
    }
}
