//! Property-based tests on cross-crate invariants: generator validity,
//! port-map consistency, spectral bounds, simulator conservation, and
//! cautious-broadcast tree structure.
//!
//! Originally written against `proptest`; the workspace now builds
//! offline, so the same properties run over a seeded random sweep of the
//! topology space (deterministic, so failures reproduce exactly).

use ale::congest::{congest_budget, AnyNetwork, EngineKind, Incoming, NodeCtx, OutCtx, Process};
use ale::core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale::graph::{GraphProps, NetworkKnowledge, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a random topology from the same families the proptest strategy
/// covered.
fn arb_topology(rng: &mut StdRng) -> Topology {
    match rng.gen_range(0..8u32) {
        0 => Topology::Cycle {
            n: rng.gen_range(3..24),
        },
        1 => Topology::Path {
            n: rng.gen_range(2..20),
        },
        2 => Topology::Complete {
            n: rng.gen_range(2..16),
        },
        3 => Topology::Star {
            n: rng.gen_range(2..16),
        },
        4 => Topology::Hypercube {
            dim: rng.gen_range(1..5),
        },
        5 => Topology::BinaryTree {
            n: rng.gen_range(2..16),
        },
        6 => Topology::Barbell {
            k: rng.gen_range(2..7),
        },
        _ => Topology::RingOfCliques {
            cliques: rng.gen_range(3..5),
            k: rng.gen_range(2..5),
        },
    }
}

/// Runs `check(case_index, topology, seed)` over a deterministic sweep.
fn for_cases(cases: usize, salt: u64, mut check: impl FnMut(usize, Topology, u64)) {
    let mut rng = StdRng::seed_from_u64(0xA1E_5EED ^ salt);
    for case in 0..cases {
        let topo = arb_topology(&mut rng);
        let seed = rng.gen_range(0..4u64);
        check(case, topo, seed);
    }
}

#[test]
fn generators_produce_connected_simple_graphs() {
    for_cases(48, 1, |case, topo, seed| {
        let g = topo.build(seed).expect("build");
        assert_eq!(g.n(), topo.node_count(), "case {case} ({topo})");
        assert!(g.is_connected(), "case {case} ({topo})");
        // Simplicity: no self-loops, no duplicate neighbor entries.
        for v in 0..g.n() {
            let mut nbrs: Vec<_> = g.neighbors(v).collect();
            assert!(nbrs.iter().all(|&u| u != v), "self-loop at {v} ({topo})");
            nbrs.sort_unstable();
            let before = nbrs.len();
            nbrs.dedup();
            assert_eq!(before, nbrs.len(), "multi-edge at {v} ({topo})");
        }
    });
}

#[test]
fn reverse_ports_are_involutions() {
    let mut shuffle_rng = StdRng::seed_from_u64(99);
    for_cases(48, 2, |_case, topo, seed| {
        let shuffle = shuffle_rng.gen_range(0..4u64);
        let g = topo
            .build(seed)
            .expect("build")
            .with_shuffled_ports(shuffle);
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                let u = g.port_target(v, p);
                let q = g.reverse_port(v, p);
                assert_eq!(g.port_target(u, q), v, "{topo}");
                assert_eq!(g.reverse_port(u, q), p, "{topo}");
            }
        }
    });
}

#[test]
fn edge_count_matches_degree_sum() {
    for_cases(48, 3, |_case, topo, seed| {
        let g = topo.build(seed).expect("build");
        let degree_sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.m(), "{topo}");
        assert_eq!(g.edges().count(), g.m(), "{topo}");
    });
}

#[test]
fn graph_properties_respect_theory_bands() {
    for_cases(16, 4, |_case, topo, seed| {
        let g = topo.build(seed).expect("build");
        if g.n() < 3 {
            return;
        }
        let props = GraphProps::compute_for(&g, &topo).expect("props");
        assert!(
            props.conductance.value > 0.0 && props.conductance.value <= 1.0 + 1e-9,
            "{topo}"
        );
        assert!(
            props.spectral_gap > 0.0 && props.spectral_gap < 1.0 + 1e-9,
            "{topo}"
        );
        // i(G) >= 2/n on connected graphs (paper, proof of Corollary 1).
        assert!(
            props.isoperimetric.value >= 2.0 / g.n() as f64 - 1e-9,
            "{topo}"
        );
        // Diameter sanity: at least 1, at most n-1.
        assert!(props.diameter >= 1 && props.diameter < g.n(), "{topo}");
        assert!(props.tmix >= 1, "{topo}");
    });
}

/// A process that forwards a fixed number of tokens and counts arrivals —
/// used to check the simulator's conservation law.
#[derive(Debug, Clone)]
struct TokenForward {
    held: u64,
    sent_total: u64,
    received_total: u64,
    rounds_left: u64,
}

impl Process for TokenForward {
    type Msg = u64;
    type Output = (u64, u64, u64); // (held, sent, received)

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>], out: &mut OutCtx<'_, u64>) {
        for m in inbox {
            self.held += m.msg;
            self.received_total += m.msg;
        }
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        // Send one token per port while supplies last.
        for p in 0..ctx.degree {
            if self.held == 0 {
                break;
            }
            self.held -= 1;
            self.sent_total += 1;
            out.send(p, 1u64);
        }
    }

    fn is_halted(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> (u64, u64, u64) {
        (self.held, self.sent_total, self.received_total)
    }
}

#[test]
fn simulator_conserves_tokens() {
    // Conservation is an engine invariant, so every engine must satisfy
    // it: the shared constructor runs the same sweep on the arena,
    // reference, and (fault-free) async engines.
    let mut start_rng = StdRng::seed_from_u64(7);
    for_cases(24, 5, |_case, topo, seed| {
        let start = start_rng.gen_range(1..8u64);
        let g = topo.build(seed).expect("build");
        let rounds = 6u64;
        for kind in EngineKind::ALL {
            let mut net = AnyNetwork::from_fn(kind, &g, seed, 32, |_deg, _rng| TokenForward {
                held: start,
                sent_total: 0,
                received_total: 0,
                rounds_left: rounds,
            });
            net.run_to_halt(rounds + 2).expect("run");
            let outs = net.outputs();
            let held: u64 = outs.iter().map(|o| o.0).sum();
            let sent: u64 = outs.iter().map(|o| o.1).sum();
            let received: u64 = outs.iter().map(|o| o.2).sum();
            // Tokens in flight at halt: sent but not yet absorbed (stuck
            // in inboxes of halted processes). Everything else conserves.
            let in_flight = sent - received;
            assert_eq!(held + in_flight, start * g.n() as u64, "{topo} {kind}");
            assert_eq!(net.metrics().messages, sent, "{topo} {kind}");
        }
    });
}

/// Runs a single-candidate cautious broadcast on the chosen engine and
/// returns the processes — engine-generic, so the protocol-level tree
/// invariants below audit every engine, not just the arena.
fn broadcast_once(
    kind: EngineKind,
    topo: Topology,
    seed: u64,
) -> (ale::graph::Graph, Vec<IrrevocableProcess>) {
    let g = topo.build(seed).expect("build");
    let knowledge = NetworkKnowledge {
        n: g.n(),
        tmix: 8,
        phi: 0.25,
    };
    let cfg = IrrevocableConfig::from_knowledge(knowledge);
    let procs: Vec<IrrevocableProcess> = (0..g.n())
        .map(|v| {
            let mut p = cfg.protocol_params(g.degree(v)).expect("params");
            p.degree = g.degree(v);
            IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
        })
        .collect();
    let budget = congest_budget(g.n(), cfg.congest_factor);
    let mut net = AnyNetwork::new(kind, &g, procs, seed, budget).expect("network");
    net.run_for(cfg.broadcast_rounds()).expect("run");
    let procs = net.processes().to_vec();
    drop(net); // the engine borrows `g` until its Drop (trace-sink flush)
    (g, procs)
}

#[test]
fn cautious_broadcast_builds_a_tree() {
    let mut kinds = EngineKind::ALL.iter().cycle();
    for_cases(12, 6, |_case, topo, seed| {
        let (g, procs) = broadcast_once(*kinds.next().unwrap(), topo, seed);
        let src_id = 1u64; // node 0's ID
                           // Every member's parent port must point to another member; chains
                           // must terminate at the root without cycles.
        for (v, proc_v) in procs.iter().enumerate() {
            if !proc_v.known_sources().contains(&src_id) {
                continue;
            }
            let mut cur = v;
            let mut hops = 0;
            loop {
                let parent_port = procs[cur].tree_parent(src_id);
                match parent_port {
                    None => {
                        assert_eq!(cur, 0, "only the candidate may be parentless ({topo})");
                        break;
                    }
                    Some(p) => {
                        let next = g.port_target(cur, p);
                        assert!(
                            procs[next].known_sources().contains(&src_id),
                            "parent {next} of {cur} is not a member ({topo})"
                        );
                        cur = next;
                        hops += 1;
                        assert!(hops <= g.n(), "parent chain cycles ({topo})");
                    }
                }
            }
        }
    });
}

#[test]
fn territory_respects_doubling_overshoot() {
    let mut kinds = EngineKind::ALL.iter().cycle();
    for_cases(12, 7, |_case, topo, seed| {
        let (_, procs) = broadcast_once(*kinds.next().unwrap(), topo, seed);
        let src_id = 1u64;
        let territory = procs
            .iter()
            .filter(|p| p.known_sources().contains(&src_id))
            .count();
        let cfg = IrrevocableConfig::from_knowledge(NetworkKnowledge {
            n: procs.len(),
            tmix: 8,
            phi: 0.25,
        });
        // Lemma 1's doubling control bounds the overshoot. The paper's
        // prose claims a factor 2 assuming per-step size reports; with the
        // message-optimal crossing-only reports (the reading consistent
        // with the paper's own message accounting) each tree level can lag
        // a factor below its threshold, relaxing the constant — measured
        // overshoot stays below ~4x across all families (EXPERIMENTS.md,
        // E-L1).
        let cap = 4 * cfg.final_threshold() as usize + 8;
        assert!(
            territory <= cap.max(procs.len().min(cap)),
            "territory {territory} exceeds overshoot cap {cap} ({topo})"
        );
    });
}
