//! Property-based tests (proptest) on cross-crate invariants: generator
//! validity, port-map consistency, spectral bounds, simulator conservation,
//! and cautious-broadcast tree structure.

use ale::congest::{congest_budget, Incoming, Network, NodeCtx, Outbox, Process};
use ale::core::irrevocable::{IrrevocableConfig, IrrevocableProcess};
use ale::graph::{GraphProps, NetworkKnowledge, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3usize..24).prop_map(|n| Topology::Cycle { n }),
        (2usize..20).prop_map(|n| Topology::Path { n }),
        (2usize..16).prop_map(|n| Topology::Complete { n }),
        (2usize..16).prop_map(|n| Topology::Star { n }),
        (1usize..5).prop_map(|dim| Topology::Hypercube { dim }),
        (2usize..16).prop_map(|n| Topology::BinaryTree { n }),
        (2usize..7).prop_map(|k| Topology::Barbell { k }),
        ((3usize..5), (2usize..5)).prop_map(|(cliques, k)| Topology::RingOfCliques { cliques, k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_produce_connected_simple_graphs(topo in arb_topology(), seed in 0u64..4) {
        let g = topo.build(seed).expect("build");
        prop_assert_eq!(g.n(), topo.node_count());
        prop_assert!(g.is_connected());
        // Simplicity: no self-loops, no duplicate neighbor entries.
        for v in 0..g.n() {
            let mut nbrs: Vec<_> = g.neighbors(v).to_vec();
            prop_assert!(nbrs.iter().all(|&u| u != v), "self-loop at {}", v);
            nbrs.sort_unstable();
            let before = nbrs.len();
            nbrs.dedup();
            prop_assert_eq!(before, nbrs.len(), "multi-edge at {}", v);
        }
    }

    #[test]
    fn reverse_ports_are_involutions(topo in arb_topology(), seed in 0u64..4, shuffle in 0u64..4) {
        let g = topo.build(seed).expect("build").with_shuffled_ports(shuffle);
        for v in 0..g.n() {
            for p in 0..g.degree(v) {
                let u = g.port_target(v, p);
                let q = g.reverse_port(v, p);
                prop_assert_eq!(g.port_target(u, q), v);
                prop_assert_eq!(g.reverse_port(u, q), p);
            }
        }
    }

    #[test]
    fn edge_count_matches_degree_sum(topo in arb_topology(), seed in 0u64..4) {
        let g = topo.build(seed).expect("build");
        let degree_sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        prop_assert_eq!(g.edges().count(), g.m());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn graph_properties_respect_theory_bands(topo in arb_topology(), seed in 0u64..3) {
        let g = topo.build(seed).expect("build");
        if g.n() < 3 { return Ok(()); }
        let props = GraphProps::compute_for(&g, &topo).expect("props");
        prop_assert!(props.conductance.value > 0.0 && props.conductance.value <= 1.0 + 1e-9);
        prop_assert!(props.spectral_gap > 0.0 && props.spectral_gap < 1.0 + 1e-9);
        // i(G) >= 2/n on connected graphs (paper, proof of Corollary 1).
        prop_assert!(props.isoperimetric.value >= 2.0 / g.n() as f64 - 1e-9);
        // Diameter sanity: at least 1, at most n-1.
        prop_assert!(props.diameter >= 1 && props.diameter <= g.n() - 1);
        prop_assert!(props.tmix >= 1);
    }
}

/// A process that forwards a fixed number of tokens and counts arrivals —
/// used to check the simulator's conservation law.
#[derive(Debug, Clone)]
struct TokenForward {
    held: u64,
    sent_total: u64,
    received_total: u64,
    rounds_left: u64,
}

impl Process for TokenForward {
    type Msg = u64;
    type Output = (u64, u64, u64); // (held, sent, received)

    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[Incoming<u64>]) -> Outbox<u64> {
        for m in inbox {
            self.held += m.msg;
            self.received_total += m.msg;
        }
        if self.rounds_left == 0 {
            return Vec::new();
        }
        self.rounds_left -= 1;
        let mut out = Vec::new();
        // Send one token per port while supplies last.
        for p in 0..ctx.degree {
            if self.held == 0 {
                break;
            }
            self.held -= 1;
            self.sent_total += 1;
            out.push((p, 1u64));
        }
        out
    }

    fn is_halted(&self) -> bool {
        self.rounds_left == 0
    }

    fn output(&self) -> (u64, u64, u64) {
        (self.held, self.sent_total, self.received_total)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_conserves_tokens(topo in arb_topology(), seed in 0u64..4, start in 1u64..8) {
        let g = topo.build(seed).expect("build");
        let rounds = 6u64;
        let mut net = Network::from_fn(&g, seed, 32, |_deg, _rng| TokenForward {
            held: start,
            sent_total: 0,
            received_total: 0,
            rounds_left: rounds,
        });
        net.run_to_halt(rounds + 2).expect("run");
        let outs = net.outputs();
        let held: u64 = outs.iter().map(|o| o.0).sum();
        let sent: u64 = outs.iter().map(|o| o.1).sum();
        let received: u64 = outs.iter().map(|o| o.2).sum();
        // Tokens in flight at halt: sent but not yet absorbed (stuck in
        // inboxes of halted processes). Everything else conserves.
        let in_flight = sent - received;
        prop_assert_eq!(held + in_flight, start * g.n() as u64);
        prop_assert_eq!(net.metrics().messages, sent);
    }
}

/// Runs a single-candidate cautious broadcast and returns the processes.
fn broadcast_once(topo: Topology, seed: u64) -> (ale::graph::Graph, Vec<IrrevocableProcess>) {
    let g = topo.build(seed).expect("build");
    let knowledge = NetworkKnowledge {
        n: g.n(),
        tmix: 8,
        phi: 0.25,
    };
    let cfg = IrrevocableConfig::from_knowledge(knowledge);
    let procs: Vec<IrrevocableProcess> = (0..g.n())
        .map(|v| {
            let mut p = cfg.protocol_params(g.degree(v)).expect("params");
            p.degree = g.degree(v);
            IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
        })
        .collect();
    let budget = congest_budget(g.n(), cfg.congest_factor);
    let mut net = Network::new(&g, procs, seed, budget).expect("network");
    net.run_for(cfg.broadcast_rounds()).expect("run");
    let procs = net.processes().to_vec();
    (g, procs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cautious_broadcast_builds_a_tree(topo in arb_topology(), seed in 0u64..3) {
        let (g, procs) = broadcast_once(topo, seed);
        let src_id = 1u64; // node 0's ID
        // Every member's parent port must point to another member; chains
        // must terminate at the root without cycles.
        for (v, proc_v) in procs.iter().enumerate() {
            if !proc_v.known_sources().contains(&src_id) {
                continue;
            }
            let mut cur = v;
            let mut hops = 0;
            loop {
                let parent_port = procs[cur].tree_parent(src_id);
                match parent_port {
                    None => {
                        prop_assert_eq!(cur, 0, "only the candidate may be parentless");
                        break;
                    }
                    Some(p) => {
                        let next = g.port_target(cur, p);
                        prop_assert!(
                            procs[next].known_sources().contains(&src_id),
                            "parent {} of {} is not a member", next, cur
                        );
                        cur = next;
                        hops += 1;
                        prop_assert!(hops <= g.n(), "parent chain cycles");
                    }
                }
            }
        }
    }

    #[test]
    fn territory_respects_doubling_overshoot(topo in arb_topology(), seed in 0u64..3) {
        let (_, procs) = broadcast_once(topo, seed);
        let src_id = 1u64;
        let territory = procs
            .iter()
            .filter(|p| p.known_sources().contains(&src_id))
            .count();
        let cfg = IrrevocableConfig::from_knowledge(NetworkKnowledge {
            n: procs.len(),
            tmix: 8,
            phi: 0.25,
        });
        // Lemma 1's doubling control bounds the overshoot. The paper's
        // prose claims a factor 2 assuming per-step size reports; with the
        // message-optimal crossing-only reports (the reading consistent
        // with the paper's own message accounting) each tree level can lag
        // a factor below its threshold, relaxing the constant — measured
        // overshoot stays below ~4x across all families (EXPERIMENTS.md,
        // E-L1).
        let cap = 4 * cfg.final_threshold() as usize + 8;
        prop_assert!(
            territory <= cap.max(procs.len().min(cap)),
            "territory {} exceeds overshoot cap {}",
            territory,
            cap
        );
    }
}
