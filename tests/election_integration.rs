//! Cross-crate integration tests: the irrevocable protocol end-to-end on
//! the simulator, across topologies, seeds, and port numberings.

use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale::core::SuccessStats;
use ale::graph::{NetworkKnowledge, Topology};

fn run_batch(topology: Topology, seeds: u64) -> SuccessStats {
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let mut stats = SuccessStats::default();
    for seed in 0..seeds {
        let o = run_irrevocable(&graph, &cfg, seed).expect("run");
        stats.record(&o);
    }
    stats
}

#[test]
fn unique_leader_on_complete_graph() {
    let stats = run_batch(Topology::Complete { n: 24 }, 15);
    assert_eq!(stats.multiple, 0, "no split brain allowed: {stats:?}");
    assert!(stats.success_rate() >= 0.9, "{stats:?}");
}

#[test]
fn unique_leader_on_hypercube() {
    let stats = run_batch(Topology::Hypercube { dim: 4 }, 15);
    assert_eq!(stats.multiple, 0, "{stats:?}");
    assert!(stats.success_rate() >= 0.9, "{stats:?}");
}

#[test]
fn unique_leader_on_torus() {
    let stats = run_batch(
        Topology::Grid2d {
            rows: 5,
            cols: 5,
            torus: true,
        },
        12,
    );
    assert_eq!(stats.multiple, 0, "{stats:?}");
    assert!(stats.success_rate() >= 0.9, "{stats:?}");
}

#[test]
fn unique_leader_on_cycle() {
    let stats = run_batch(Topology::Cycle { n: 12 }, 10);
    assert_eq!(stats.multiple, 0, "{stats:?}");
    assert!(stats.success_rate() >= 0.8, "{stats:?}");
}

#[test]
fn unique_leader_on_random_regular() {
    let stats = run_batch(Topology::RandomRegular { n: 32, d: 4 }, 10);
    assert_eq!(stats.multiple, 0, "{stats:?}");
    assert!(stats.success_rate() >= 0.9, "{stats:?}");
}

#[test]
fn deterministic_under_fixed_seed() {
    let topology = Topology::Hypercube { dim: 4 };
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let a = run_irrevocable(&graph, &cfg, 99).expect("run");
    let b = run_irrevocable(&graph, &cfg, 99).expect("run");
    assert_eq!(a, b, "same seed must reproduce the run exactly");
}

#[test]
fn anonymity_port_shuffles_preserve_success() {
    // The protocol may not depend on port numbering semantics: shuffling
    // every node's ports yields an isomorphic network; elections must keep
    // working (outcomes differ — randomness flows differently — but
    // success must persist).
    let topology = Topology::Complete { n: 16 };
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    for shuffle_seed in 0..4 {
        let shuffled = graph.with_shuffled_ports(shuffle_seed);
        let mut stats = SuccessStats::default();
        for seed in 0..8 {
            stats.record(&run_irrevocable(&shuffled, &cfg, seed).expect("run"));
        }
        assert_eq!(stats.multiple, 0, "shuffle {shuffle_seed}: {stats:?}");
        assert!(
            stats.success_rate() >= 0.75,
            "shuffle {shuffle_seed}: {stats:?}"
        );
    }
}

#[test]
fn leader_is_a_candidate_with_the_top_observed_id() {
    let topology = Topology::Complete { n: 20 };
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let o = run_irrevocable(&graph, &cfg, 5).expect("run");
    if let Some(leader) = o.unique_leader() {
        assert!(
            o.candidates.contains(&leader),
            "leader must come from the candidate set"
        );
    }
}

#[test]
fn time_budget_matches_theorem_shape() {
    // Theorem 1: O(t_mix log^2 n) rounds. The simulator must finish within
    // the configured schedule (total_rounds) and the schedule must scale
    // with t_mix·log²n.
    let topology = Topology::Complete { n: 32 };
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let o = run_irrevocable(&graph, &cfg, 1).expect("run");
    assert!(o.metrics.rounds <= cfg.total_rounds() + 4);
    let expected = cfg.knowledge.tmix as f64 * (cfg.log2_n() as f64).powi(2) * 4.0 * cfg.c * cfg.c;
    assert!(
        (o.metrics.rounds as f64) <= expected * 1.5 + 64.0,
        "rounds {} vs t_mix·log²n shape {expected}",
        o.metrics.rounds
    );
}

#[test]
fn rejects_degenerate_knowledge() {
    let graph = Topology::Complete { n: 8 }.build(0).expect("graph");
    let bad = IrrevocableConfig::from_knowledge(NetworkKnowledge {
        n: 8,
        tmix: 0,
        phi: 0.5,
    });
    assert!(run_irrevocable(&graph, &bad, 0).is_err());
}

fn median_messages(topology: Topology, seeds: u64, ours: bool) -> f64 {
    use ale::baselines::gilbert::{run_gilbert, GilbertConfig};
    let graph = topology.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let mut v: Vec<f64> = (0..seeds)
        .map(|seed| {
            if ours {
                run_irrevocable(&graph, &cfg, seed)
                    .expect("run")
                    .metrics
                    .messages as f64
            } else {
                let gcfg = GilbertConfig::new(graph.n(), cfg.knowledge.tmix);
                run_gilbert(&graph, &gcfg, seed)
                    .expect("run")
                    .metrics
                    .messages as f64
            }
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

#[test]
fn message_growth_slower_than_gilbert_on_cycles() {
    // Table 1's headline is the improvement over Gilbert et al. [10]:
    // Õ(√(n·t_mix/Φ)) vs O(t_mix·√n·log^{7/2}n) messages — on cycles the
    // ratio grows like √(t_mix·Φ) ≈ √n/polylog. At simulatable sizes this
    // shows up as a slower growth *rate* (the absolute crossover sits near
    // n ≈ 48–64; see `message_crossover_on_larger_cycles`).
    let tw12 = median_messages(Topology::Cycle { n: 12 }, 7, true);
    let tw24 = median_messages(Topology::Cycle { n: 24 }, 7, true);
    let gl12 = median_messages(Topology::Cycle { n: 12 }, 7, false);
    let gl24 = median_messages(Topology::Cycle { n: 24 }, 7, false);
    let ours_growth = tw24 / tw12;
    let gilbert_growth = gl24 / gl12;
    assert!(
        ours_growth < gilbert_growth * 1.1,
        "this work grew {ours_growth:.2}x vs gilbert {gilbert_growth:.2}x between C12 and C24"
    );
}

#[test]
#[ignore = "several seconds per run; exercised by `cargo test --release -- --ignored` and the table1/fig_scaling binaries"]
fn message_crossover_on_larger_cycles() {
    // Calibration data (release, 6 seeds): gilbert/this-work message ratio
    // 0.70 at C12, 0.91 at C32, ≥ 1.28 at C40/C64 — the predicted
    // crossover on poorly-mixing graphs.
    let tw = median_messages(Topology::Cycle { n: 64 }, 5, true);
    let gl = median_messages(Topology::Cycle { n: 64 }, 5, false);
    assert!(
        tw < gl * 1.15,
        "beyond the crossover this work ({tw}) should not lose to gilbert ({gl}) by >15%"
    );
}
