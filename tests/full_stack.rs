//! Full-stack pipeline: elect (implicit) → announce (explicit) → build a
//! BFS tree from the leader — the complete reduction chain Section 3 of
//! the paper sketches, run end to end over the public API.

use ale::core::extensions::{run_explicit_phase, run_tree_construction};
use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale::graph::{GraphBuilder, Topology};

#[test]
fn elect_announce_and_build_tree() {
    let topology = Topology::RandomRegular { n: 32, d: 4 };
    let graph = topology.build(5).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");

    // Phase 1: implicit election (Theorem 1).
    let election = run_irrevocable(&graph, &cfg, 3).expect("election");
    let leader = election.unique_leader().expect("unique leader");

    // Phase 2: explicit announcement (Section 3 reduction).
    let diameter = graph.diameter() as u64;
    let outs = run_explicit_phase(&graph, leader, 424242, diameter, 9).expect("explicit");
    assert!(outs.iter().all(|o| o.leader_id == Some(424242)));
    let bfs = graph.bfs_distances(leader);
    for (v, o) in outs.iter().enumerate() {
        assert_eq!(o.distance, Some(bfs[v] as u64), "node {v}");
    }

    // Phase 3: spanning tree rooted at the leader; the echo verifies n.
    let tree = run_tree_construction(&graph, leader, 2 * diameter + 8, 9).expect("tree");
    assert_eq!(tree.root_count, Some(graph.n() as u64));
    let tree_edges = tree.nodes.iter().filter(|t| t.parent.is_some()).count();
    assert_eq!(tree_edges, graph.n() - 1);
}

#[test]
fn pipeline_works_on_custom_built_graph() {
    // A hand-built topology through the builder API: two triangles joined
    // by a bridge — low conductance, still a valid pipeline.
    let graph = GraphBuilder::new(6)
        .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
        .build()
        .expect("graph");
    let cfg = IrrevocableConfig::derive(&graph).expect("config");
    let mut elected = 0;
    for seed in 0..6 {
        let o = run_irrevocable(&graph, &cfg, seed).expect("run");
        assert!(o.leader_count() <= 1, "no split brain on tiny graphs");
        if let Some(leader) = o.unique_leader() {
            elected += 1;
            let tree =
                run_tree_construction(&graph, leader, 2 * graph.n() as u64, seed).expect("tree");
            assert_eq!(tree.root_count, Some(6));
        }
    }
    assert!(elected >= 4, "only {elected}/6 runs elected");
}

#[test]
fn explicit_phase_is_cheap_relative_to_election() {
    // The reduction's appeal: the explicit phase costs O(m) messages —
    // negligible next to the election on well-connected graphs.
    let topology = Topology::Hypercube { dim: 5 };
    let graph = topology.build(0).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&graph, &topology).expect("config");
    let election = run_irrevocable(&graph, &cfg, 1).expect("election");
    let leader = election.unique_leader().expect("leader");
    // Count explicit-phase messages via a fresh run of just that phase.
    use ale::congest::congest_budget;
    let _ = congest_budget(graph.n(), 8);
    let outs = run_explicit_phase(&graph, leader, 7, graph.diameter() as u64, 2).expect("explicit");
    assert_eq!(outs.len(), graph.n());
    // 2m is the hard ceiling for one flood; the election pays much more.
    assert!(election.metrics.messages > 2 * graph.m() as u64);
}
