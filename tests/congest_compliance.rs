//! CONGEST-model compliance audits: message sizes against the O(log n)
//! budget, port discipline, and serialization charging.

use ale::baselines::flood_max::{run_flood_max, FloodMaxConfig};
use ale::baselines::gilbert::{run_gilbert, GilbertConfig};
use ale::baselines::kutten::{run_kutten, KuttenConfig};
use ale::congest::{congest_budget, AnyNetwork, EngineKind};
use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig, IrrevocableProcess};
use ale::core::revocable::{run_revocable, run_revocable_async, RevocableParams};
use ale::graph::{NetworkKnowledge, Topology};

#[test]
fn irrevocable_runs_are_congest_clean() {
    // All message fields are O(log n) bits (IDs in n^4, counters in x), so
    // with the default budget factor every message must fit and no port
    // may be double-used.
    for topo in [
        Topology::Complete { n: 24 },
        Topology::Hypercube { dim: 4 },
        Topology::Cycle { n: 12 },
    ] {
        let g = topo.build(1).expect("graph");
        let cfg = IrrevocableConfig::derive_for(&g, &topo).expect("config");
        for seed in 0..4 {
            let o = run_irrevocable(&g, &cfg, seed).expect("run");
            assert!(
                o.metrics.congest_clean(),
                "{topo} seed {seed}: oversize={} multi={}",
                o.metrics.oversize_messages,
                o.metrics.multi_send_violations
            );
            assert_eq!(
                o.metrics.congest_rounds, o.metrics.rounds,
                "clean runs charge exactly one CONGEST round per round"
            );
        }
    }
}

#[test]
fn baselines_are_congest_clean() {
    let topo = Topology::RandomRegular { n: 32, d: 4 };
    let g = topo.build(1).expect("graph");
    let f = FloodMaxConfig::for_graph(&g);
    let k = KuttenConfig::for_graph(&g);
    let gl = GilbertConfig::new(32, 8);
    for seed in 0..4 {
        assert!(run_flood_max(&g, &f, seed)
            .expect("run")
            .metrics
            .congest_clean());
        assert!(run_kutten(&g, &k, seed)
            .expect("run")
            .metrics
            .congest_clean());
        let o = run_gilbert(&g, &gl, seed).expect("run");
        assert!(
            o.metrics.multi_send_violations == 0,
            "gilbert violates port discipline"
        );
        assert!(o.metrics.congest_clean(), "gilbert oversize messages");
    }
}

#[test]
fn revocable_potentials_are_charged_not_smuggled() {
    // Potentials exceed O(log n) bits in later diffusion rounds; the run
    // must record oversize messages AND charge serialized rounds — the
    // paper's own time accounting (Theorem 3 proof). The serialization
    // charging is an engine obligation, so the fault-free asynchronous
    // engine must account identically.
    let g = Topology::Complete { n: 4 }.build(0).expect("graph");
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
    let r = run_revocable(&g, &params, 1, 8).expect("run");
    assert!(r.outcome.metrics.oversize_messages > 0);
    assert!(r.outcome.metrics.congest_rounds > r.outcome.metrics.rounds);
    assert_eq!(r.outcome.metrics.multi_send_violations, 0);
    let a = run_revocable_async(&g, &params, 1, 8, &Default::default()).expect("async run");
    assert_eq!(a, r, "fault-free async run must charge identically");
}

#[test]
fn congest_accounting_is_engine_invariant() {
    // The same protocol audited on every engine through the shared
    // test-support constructor: all three must report identical,
    // congest-clean accounting (and the async engine must additionally
    // reconcile its delivery counters with the sent count).
    let topo = Topology::Hypercube { dim: 4 };
    let g = topo.build(1).expect("graph");
    let knowledge = NetworkKnowledge {
        n: g.n(),
        tmix: 8,
        phi: 0.25,
    };
    let cfg = IrrevocableConfig::from_knowledge(knowledge);
    let budget = congest_budget(g.n(), cfg.congest_factor);
    let mut snapshots = Vec::new();
    for kind in EngineKind::ALL {
        let procs: Vec<IrrevocableProcess> = (0..g.n())
            .map(|v| {
                let mut p = cfg.protocol_params(g.degree(v)).expect("params");
                p.degree = g.degree(v);
                IrrevocableProcess::with_candidacy(p, 1 + v as u64, v == 0)
            })
            .collect();
        let mut net = AnyNetwork::new(kind, &g, procs, 3, budget).expect("network");
        net.run_for(cfg.broadcast_rounds()).expect("run");
        let m = net.metrics_snapshot();
        assert!(m.congest_clean(), "{kind}");
        assert_eq!(
            m.delivered,
            m.messages - m.dropped + m.duplicated,
            "{kind}: delivery counters must reconcile with sends"
        );
        snapshots.push(m);
    }
    assert_eq!(snapshots[0], snapshots[1], "arena vs reference");
    assert_eq!(snapshots[0], snapshots[2], "arena vs async");
}

#[test]
fn max_message_bits_bounded_by_field_widths() {
    let topo = Topology::Complete { n: 32 };
    let g = topo.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&g, &topo).expect("config");
    let o = run_irrevocable(&g, &cfg, 2).expect("run");
    // Walk message: 2 tag + 4·log2(n) id + log2(total walks) count; give
    // the audit a safe ceiling of 8·log2(n) + 16.
    let ceiling = 8 * 5 + 16;
    assert!(
        o.metrics.max_message_bits <= ceiling,
        "widest message {} exceeds field-width ceiling {ceiling}",
        o.metrics.max_message_bits
    );
}
