//! CONGEST-model compliance audits: message sizes against the O(log n)
//! budget, port discipline, and serialization charging.

use ale::baselines::flood_max::{run_flood_max, FloodMaxConfig};
use ale::baselines::gilbert::{run_gilbert, GilbertConfig};
use ale::baselines::kutten::{run_kutten, KuttenConfig};
use ale::core::irrevocable::{run_irrevocable, IrrevocableConfig};
use ale::core::revocable::{run_revocable, RevocableParams};
use ale::graph::Topology;

#[test]
fn irrevocable_runs_are_congest_clean() {
    // All message fields are O(log n) bits (IDs in n^4, counters in x), so
    // with the default budget factor every message must fit and no port
    // may be double-used.
    for topo in [
        Topology::Complete { n: 24 },
        Topology::Hypercube { dim: 4 },
        Topology::Cycle { n: 12 },
    ] {
        let g = topo.build(1).expect("graph");
        let cfg = IrrevocableConfig::derive_for(&g, &topo).expect("config");
        for seed in 0..4 {
            let o = run_irrevocable(&g, &cfg, seed).expect("run");
            assert!(
                o.metrics.congest_clean(),
                "{topo} seed {seed}: oversize={} multi={}",
                o.metrics.oversize_messages,
                o.metrics.multi_send_violations
            );
            assert_eq!(
                o.metrics.congest_rounds, o.metrics.rounds,
                "clean runs charge exactly one CONGEST round per round"
            );
        }
    }
}

#[test]
fn baselines_are_congest_clean() {
    let topo = Topology::RandomRegular { n: 32, d: 4 };
    let g = topo.build(1).expect("graph");
    let f = FloodMaxConfig::for_graph(&g);
    let k = KuttenConfig::for_graph(&g);
    let gl = GilbertConfig::new(32, 8);
    for seed in 0..4 {
        assert!(run_flood_max(&g, &f, seed)
            .expect("run")
            .metrics
            .congest_clean());
        assert!(run_kutten(&g, &k, seed)
            .expect("run")
            .metrics
            .congest_clean());
        let o = run_gilbert(&g, &gl, seed).expect("run");
        assert!(
            o.metrics.multi_send_violations == 0,
            "gilbert violates port discipline"
        );
        assert!(o.metrics.congest_clean(), "gilbert oversize messages");
    }
}

#[test]
fn revocable_potentials_are_charged_not_smuggled() {
    // Potentials exceed O(log n) bits in later diffusion rounds; the run
    // must record oversize messages AND charge serialized rounds — the
    // paper's own time accounting (Theorem 3 proof).
    let g = Topology::Complete { n: 4 }.build(0).expect("graph");
    let params = RevocableParams::paper_blind(1.0, 0.2).with_scales(0.02, 0.25, 1.0);
    let r = run_revocable(&g, &params, 1, 8).expect("run");
    assert!(r.outcome.metrics.oversize_messages > 0);
    assert!(r.outcome.metrics.congest_rounds > r.outcome.metrics.rounds);
    assert_eq!(r.outcome.metrics.multi_send_violations, 0);
}

#[test]
fn max_message_bits_bounded_by_field_widths() {
    let topo = Topology::Complete { n: 32 };
    let g = topo.build(1).expect("graph");
    let cfg = IrrevocableConfig::derive_for(&g, &topo).expect("config");
    let o = run_irrevocable(&g, &cfg, 2).expect("run");
    // Walk message: 2 tag + 4·log2(n) id + log2(total walks) count; give
    // the audit a safe ceiling of 8·log2(n) + 16.
    let ceiling = 8 * 5 + 16;
    assert!(
        o.metrics.max_message_bits <= ceiling,
        "widest message {} exceeds field-width ceiling {ceiling}",
        o.metrics.max_message_bits
    );
}
