//! # ale — Anonymous Leader Election
//!
//! Umbrella crate re-exporting the whole workspace: a production-quality
//! reproduction of Kowalski & Mosteiro, *Time and Communication Complexity
//! of Leader Election in Anonymous Networks* (ICDCS 2021, arXiv:2101.04400).
//!
//! See the individual crates for the pieces:
//!
//! * [`graph`] — topology generators and graph properties (`Φ`, `i(G)`,
//!   `t_mix`, diameter).
//! * [`congest`] — the anonymous CONGEST simulator (synchronous arena +
//!   reference engines, and the event-driven asynchronous engine with a
//!   latency/fault adversary).
//! * [`core`] — the paper's two protocols: irrevocable (known `n`) and
//!   revocable (unknown `n`) leader election.
//! * [`baselines`] — comparators from the related work.
//! * [`impossibility`] — the pumping-wheel construction of Theorem 2.
//! * [`markov`] — matrices, chains, spectral tools.
//!
//! ## Quickstart
//!
//! ```
//! use ale::graph::Topology;
//! use ale::core::irrevocable::{IrrevocableConfig, run_irrevocable};
//!
//! let graph = Topology::Complete { n: 32 }.build(7)?;
//! let cfg = IrrevocableConfig::derive(&graph)?;
//! let outcome = run_irrevocable(&graph, &cfg, 42)?;
//! assert_eq!(outcome.leaders().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use ale_baselines as baselines;
pub use ale_congest as congest;
pub use ale_core as core;
pub use ale_graph as graph;
pub use ale_impossibility as impossibility;
pub use ale_markov as markov;
